"""Reverse-reachable (RR) set generation (Section 3.5, Definition 3.1).

An RR set for a target ``z`` is the set of vertices that can reach ``z`` in a
random live-edge graph ``G ~ G``; an RR set (without a stated target) uses a
uniformly random target.  The fundamental identity is

    Pr[R ∩ S ≠ ∅] = Inf(S) / n,

so influential vertices appear in RR sets frequently and influence
maximization reduces to maximum coverage over a collection of RR sets.

Generation is a *reverse* breadth-first search from the target: when a vertex
``v`` enters the RR set, each of its in-edges ``(u, v)`` is examined with one
coin flip, and ``u`` joins the set if the flip succeeds and ``u`` is new.

Cost conventions (Table 1 / Table 8): picking the target examines one vertex;
every vertex added to the RR set counts one vertex examination; every in-edge
examined counts one edge examination.  The RR set's *weight* is the sum of
in-degrees of its members (the number of coin flips), and its *size* (number
of vertices) is what RIS stores, so sample size accumulates vertices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import require_positive_int, require_rng_or_streams, require_vertex
from ..graphs.influence_graph import InfluenceGraph
from .costs import SampleSize, TraversalCost
from .frontier import first_hit, frontier_edges, use_scalar_frontier
from .random_source import RandomSource


@dataclass(frozen=True)
class RRSet:
    """One reverse-reachable set."""

    target: int
    vertices: frozenset[int]
    weight: int

    @property
    def size(self) -> int:
        """Number of vertices in the RR set."""
        return len(self.vertices)

    def intersects(self, seed_set: set[int] | frozenset[int] | tuple[int, ...]) -> bool:
        """Whether the RR set shares a vertex with ``seed_set``."""
        return not self.vertices.isdisjoint(seed_set)


def sample_rr_set(
    graph: InfluenceGraph,
    rng: RandomSource | np.random.Generator,
    *,
    target: int | None = None,
    cost: TraversalCost | None = None,
    sample_size: SampleSize | None = None,
) -> RRSet:
    """Generate one RR set by reverse BFS with per-edge coin flips.

    Parameters
    ----------
    target:
        Fixed target vertex; when ``None`` a uniformly random target is drawn
        (the standard RR-set definition).
    cost, sample_size:
        Optional accumulators updated in place.
    """
    generator = rng.generator if isinstance(rng, RandomSource) else rng
    if graph.num_vertices == 0:
        raise ValueError("cannot sample an RR set from an empty graph")
    if target is None:
        chosen_target = int(generator.integers(graph.num_vertices))
    else:
        chosen_target = require_vertex(target, graph.num_vertices, name="target")
    visited_stamp = np.zeros(graph.num_vertices, dtype=np.int64)
    slot = np.empty(graph.num_vertices, dtype=np.int64)
    rr_set = _rr_kernel(graph.in_csr, chosen_target, generator, visited_stamp, 1, slot, cost)
    if sample_size is not None:
        sample_size.add_vertices(rr_set.size)
    return rr_set


def _rr_kernel(
    in_csr: tuple[np.ndarray, np.ndarray, np.ndarray],
    chosen_target: int,
    generator: np.random.Generator,
    visited_stamp: np.ndarray,
    stamp: int,
    slot: np.ndarray,
    cost: TraversalCost | None,
) -> RRSet:
    """Whole-frontier vectorized reverse BFS over the in-edge CSR.

    The FIFO queue of the historical loop is exactly level-order BFS, so one
    uniform vector per level — covering the frontier's in-edges in the same
    vertex-then-edge order — consumes the PRNG stream byte-for-byte
    identically (see :mod:`repro.diffusion.frontier`).  ``visited_stamp`` is
    an int scratch array marking visited vertices with ``stamp``; batch
    callers bump ``stamp`` per RR set instead of clearing the array.  ``slot``
    is integer scratch of length ``num_vertices``.
    """
    indptr, sources, probs = in_csr
    visited_stamp[chosen_target] = stamp
    members: list[int] = [chosen_target]
    # The frontier lives as a Python list; it only round-trips through numpy
    # on the (large) levels that take the vectorized path.
    frontier: list[int] = [chosen_target]
    weight = 0
    while frontier:
        if use_scalar_frontier(frontier):
            # Small frontier (the overwhelmingly common case for RR sets):
            # plain per-vertex expansion.  Identical draws either way.
            next_frontier: list[int] = []
            edges_scanned = 0
            for vertex in frontier:
                start, stop = indptr[vertex], indptr[vertex + 1]
                degree = int(stop - start)
                if degree == 0:
                    continue
                edges_scanned += degree
                draws = generator.random(degree)
                live = draws < probs[start:stop]
                for source in sources[start:stop][live].tolist():
                    if visited_stamp[source] != stamp:
                        visited_stamp[source] = stamp
                        next_frontier.append(source)
            weight += edges_scanned
            if cost is not None:
                cost.add_vertices(len(frontier))
                cost.add_edges(edges_scanned)
        else:
            frontier_array = np.asarray(frontier, dtype=np.int64)
            edge_indices, _, total = frontier_edges(indptr, frontier_array)
            weight += total
            if cost is not None:
                cost.add_vertices(len(frontier))
                cost.add_edges(total)
            if total == 0:
                break
            draws = generator.random(total)
            live_edges = edge_indices[draws < probs[edge_indices]]
            candidates = sources[live_edges]
            candidates = candidates[visited_stamp[candidates] != stamp]
            new_vertices = first_hit(candidates, slot)
            visited_stamp[new_vertices] = stamp
            next_frontier = new_vertices.tolist()
        members.extend(next_frontier)
        frontier = next_frontier

    return RRSet(target=chosen_target, vertices=frozenset(members), weight=weight)


def sample_rr_sets(
    graph: InfluenceGraph,
    count: int,
    rng: RandomSource | np.random.Generator,
    *,
    cost: TraversalCost | None = None,
    sample_size: SampleSize | None = None,
    jobs: int | None = None,
    executor: "Executor | None" = None,
    telemetry=None,
    batch_mode: str | None = None,
) -> list[RRSet]:
    """Generate ``count`` independent RR sets.

    With ``jobs=None`` and ``executor=None`` (the default), all sets are
    drawn sequentially from ``rng``'s single stream — the historical
    behaviour.  Passing ``jobs`` (1 or more) or an executor switches to the
    runtime's split-stream contract: RR set ``i`` is drawn from a child
    stream derived from ``(rng, i)``, so the collection is bit-identical for
    any worker count or chunking (``rng`` must then be an ``int``,
    ``SeedSequence``, or ``RandomSource``).  Cost accumulators are merged in
    chunk order, keeping their totals exact.  ``batch_mode="bitparallel"``
    generates the sets 64 worlds per word (own draw-order contract; under
    ``jobs`` the split-stream task unit becomes the word index).

    The split-stream dispatch lives in one place —
    :meth:`repro.diffusion.models.DiffusionModel.sample_rr_sets` — and this
    function is the IC shorthand for it.
    """
    require_positive_int(count, "count")
    from .bitparallel import SCALAR, resolve_batch_mode

    if (
        jobs is None
        and executor is None
        and resolve_batch_mode(batch_mode) == SCALAR
    ):
        if telemetry is not None and telemetry.enabled:
            telemetry.incr("rr.sets", count)
        return _sample_rr_sets_batch(graph, count, rng, cost=cost, sample_size=sample_size)

    from .models import INDEPENDENT_CASCADE

    return INDEPENDENT_CASCADE.sample_rr_sets(
        graph,
        count,
        rng,
        cost=cost,
        sample_size=sample_size,
        jobs=jobs,
        executor=executor,
        telemetry=telemetry,
        batch_mode=batch_mode,
    )


def _sample_rr_sets_batch(
    graph: InfluenceGraph,
    count: int,
    rng: RandomSource | np.random.Generator | None = None,
    *,
    cost: TraversalCost | None = None,
    sample_size: SampleSize | None = None,
    streams=None,
) -> list[RRSet]:
    """Batched RR-set generation with reused scratch buffers.

    With ``rng``, byte-identical to ``count`` :func:`sample_rr_set` calls on
    the same stream; with ``streams`` (one source per set — the runtime chunk
    workers' form), byte-identical to one :func:`sample_rr_set` call per
    source.  Either way the batch amortizes per-call overhead: one CSR
    unpack, and shared visited/scratch arrays — the visited array is never
    cleared, each RR set marks it with a fresh stamp value.
    """
    require_rng_or_streams(count, rng, streams)
    if graph.num_vertices == 0:
        raise ValueError("cannot sample an RR set from an empty graph")
    if streams is None:
        generator = rng.generator if isinstance(rng, RandomSource) else rng
        generators = (generator for _ in range(count))
    else:
        generators = (
            source.generator if isinstance(source, RandomSource) else source
            for source in streams
        )
    in_csr = graph.in_csr
    num_vertices = graph.num_vertices
    visited_stamp = np.zeros(num_vertices, dtype=np.int64)
    slot = np.empty(num_vertices, dtype=np.int64)
    rr_sets: list[RRSet] = []
    total_size = 0
    for stamp, generator in enumerate(generators, start=1):
        chosen_target = int(generator.integers(num_vertices))
        rr_set = _rr_kernel(in_csr, chosen_target, generator, visited_stamp, stamp, slot, cost)
        total_size += rr_set.size
        rr_sets.append(rr_set)
    if sample_size is not None:
        sample_size.add_vertices(total_size)
    return rr_sets


class RRSetCollection:
    """A collection of RR sets with an inverted vertex -> set-index index.

    The inverted index makes both coverage counting (Estimate) and covered-set
    removal (Update) proportional to the number of affected sets rather than
    to the whole collection, which is how practical RIS implementations work.
    """

    def __init__(self, rr_sets: list[RRSet], num_vertices: int) -> None:
        self._rr_sets = list(rr_sets)
        self._num_vertices = int(num_vertices)
        self._alive = np.ones(len(self._rr_sets), dtype=bool)
        self._coverage = np.zeros(num_vertices, dtype=np.int64)
        self._index: list[list[int]] = [[] for _ in range(num_vertices)]
        for set_index, rr_set in enumerate(self._rr_sets):
            for vertex in rr_set.vertices:
                self._index[vertex].append(set_index)
                self._coverage[vertex] += 1

    @classmethod
    def from_sampling(
        cls,
        graph: InfluenceGraph,
        count: int,
        rng: RandomSource | np.random.Generator,
        *,
        model: "str | DiffusionModel | None" = None,
        cost: TraversalCost | None = None,
        sample_size: SampleSize | None = None,
        jobs: int | None = None,
        executor: "Executor | None" = None,
        batch_mode: str | None = None,
    ) -> "RRSetCollection":
        """Sample ``count`` RR sets and build the indexed collection directly.

        The batch entry point behind :meth:`RISEstimator.build
        <repro.algorithms.ris.RISEstimator.build>`: samples go through the
        model's batched generator (buffer-reusing sequential kernel by
        default, the runtime's split-stream chunks with ``jobs``/``executor``,
        the 64-worlds-per-word kernel with ``batch_mode="bitparallel"``) and
        feed the inverted index without an intermediate caller-side pass.
        """
        from .models import resolve_model

        rr_sets = resolve_model(model).sample_rr_sets(
            graph,
            count,
            rng,
            cost=cost,
            sample_size=sample_size,
            jobs=jobs,
            executor=executor,
            batch_mode=batch_mode,
        )
        return cls(rr_sets, graph.num_vertices)

    # ------------------------------------------------------------------ #
    @property
    def num_total(self) -> int:
        """Total number of RR sets originally inserted."""
        return len(self._rr_sets)

    @property
    def num_alive(self) -> int:
        """Number of RR sets not yet removed by Update."""
        return int(self._alive.sum())

    @property
    def total_size(self) -> int:
        """Total number of stored vertices over all RR sets (the RIS sample size)."""
        return sum(rr_set.size for rr_set in self._rr_sets)

    @property
    def total_weight(self) -> int:
        """Total weight (coin flips spent) over all RR sets."""
        return sum(rr_set.weight for rr_set in self._rr_sets)

    def coverage(self, vertex: int) -> int:
        """Number of alive RR sets containing ``vertex``."""
        require_vertex(vertex, self._num_vertices)
        return int(self._coverage[vertex])

    def coverage_array(self) -> np.ndarray:
        """Copy of the per-vertex alive-coverage counts."""
        return self._coverage.copy()

    def fraction_covered(self, seed_set: tuple[int, ...] | set[int]) -> float:
        """``F_R(S)``: fraction of *all* RR sets intersecting ``seed_set``.

        Matches the paper's definition over the full collection (removal by
        Update is an implementation detail of marginal-coverage queries and
        does not change this quantity's meaning for a fixed collection).
        """
        if not self._rr_sets:
            return 0.0
        seed_frozen = frozenset(seed_set)
        hit = sum(1 for rr_set in self._rr_sets if rr_set.intersects(seed_frozen))
        return hit / len(self._rr_sets)

    def remove_covered_by(self, vertex: int) -> int:
        """Remove all alive RR sets containing ``vertex`` (RIS Update).

        Returns the number of RR sets removed.  Coverage counts of other
        vertices are decremented accordingly so subsequent coverage queries
        return marginal coverage with respect to the chosen seeds.
        """
        require_vertex(vertex, self._num_vertices)
        removed = 0
        for set_index in self._index[vertex]:
            if self._alive[set_index]:
                self._alive[set_index] = False
                removed += 1
                for member in self._rr_sets[set_index].vertices:
                    self._coverage[member] -= 1
        return removed

    def __len__(self) -> int:
        return len(self._rr_sets)

    def __iter__(self):
        return iter(self._rr_sets)
