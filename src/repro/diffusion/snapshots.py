"""Live-edge snapshot sampling and forward reachability (Section 3.4).

A *snapshot* (random graph) ``G ~ G`` keeps each edge of the influence graph
independently with its probability.  Snapshot-type algorithms draw ``tau``
snapshots up front, store their live edges, and estimate the influence spread
of ``S`` as the average over snapshots of the number of vertices reachable
from ``S``.

Cost conventions (Table 8): generating a snapshot streams the edge list with
one coin flip per edge but performs *no graph traversal*, so it contributes to
sample size (edges stored) but not to traversal cost.  Computing a reachable
set is a BFS over live edges: every scanned vertex counts one vertex
examination and every scanned live out-edge counts one edge examination.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from .._validation import normalize_seed_set, require_positive_int
from ..graphs.influence_graph import InfluenceGraph
from .costs import SampleSize, TraversalCost
from .frontier import first_hit, frontier_edges, use_scalar_frontier
from .random_source import RandomSource


@dataclass(frozen=True)
class Snapshot:
    """One sampled live-edge graph in CSR form (targets only, probabilities dropped)."""

    num_vertices: int
    indptr: np.ndarray
    targets: np.ndarray

    @property
    def num_live_edges(self) -> int:
        """Number of live (kept) edges in this snapshot."""
        return int(self.targets.shape[0])

    def out_neighbors(self, vertex: int) -> np.ndarray:
        """Live out-neighbours of ``vertex`` in this snapshot."""
        return self.targets[self.indptr[vertex] : self.indptr[vertex + 1]]

    @cached_property
    def reverse_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Reverse CSR ``(indptr, sources)`` of the live edges, built once.

        Computed lazily and cached on the instance (``cached_property`` writes
        into ``__dict__``, which the frozen dataclass permits), so every
        consumer that walks the snapshot backwards — the bottom-k sketches in
        :mod:`repro.graphs.sketches`, reverse traversals in examples — shares
        one CSR transpose instead of each rebuilding a Python list-of-lists.
        """
        counts = np.zeros(self.num_vertices, dtype=np.int64)
        np.add.at(counts, self.targets, 1)
        indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        order = np.argsort(self.targets, kind="stable")
        sources = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), np.diff(self.indptr)
        )[order]
        return indptr, sources


def snapshot_from_live_edges(
    num_vertices: int, live_sources: np.ndarray, live_targets: np.ndarray
) -> Snapshot:
    """Assemble a :class:`Snapshot` from an unordered live-edge list.

    The single place where live edges become forward CSR; both the IC edge
    filter (:func:`sample_snapshot`) and the LT parent-array conversion
    (:meth:`repro.diffusion.linear_threshold.LTSnapshot.to_snapshot`) build
    through it, so the two models cannot drift to different representations.
    """
    live_counts = np.zeros(num_vertices, dtype=np.int64)
    np.add.at(live_counts, live_sources, 1)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(live_counts, out=indptr[1:])
    order = np.argsort(live_sources, kind="stable")
    return Snapshot(
        num_vertices=num_vertices,
        indptr=indptr,
        targets=np.asarray(live_targets)[order].astype(np.int64, copy=True),
    )


def sample_snapshot(
    graph: InfluenceGraph,
    rng: RandomSource | np.random.Generator,
    *,
    sample_size: SampleSize | None = None,
) -> Snapshot:
    """Draw one snapshot ``G ~ G`` by keeping each edge with its probability."""
    generator = rng.generator if isinstance(rng, RandomSource) else rng
    indptr, targets, probs = graph.out_csr
    draws = generator.random(graph.num_edges)
    live_mask = draws < probs
    # Edge i in forward CSR order belongs to the source vertex whose indptr
    # range contains i; np.repeat reconstructs that source column cheaply.
    sources = np.repeat(np.arange(graph.num_vertices), np.diff(indptr))
    snapshot = snapshot_from_live_edges(
        graph.num_vertices, sources[live_mask], targets[live_mask]
    )
    if sample_size is not None:
        sample_size.add_edges(snapshot.num_live_edges)
    return snapshot


def sample_snapshots(
    graph: InfluenceGraph,
    count: int,
    rng: RandomSource | np.random.Generator,
    *,
    sample_size: SampleSize | None = None,
    jobs: int | None = None,
    executor: "Executor | None" = None,
    telemetry=None,
) -> list[Snapshot]:
    """Draw ``count`` independent snapshots.

    Defaults to the historical sequential single-stream draw.  Passing
    ``jobs`` or ``executor`` opts into the runtime's split-stream contract
    (see :mod:`repro.runtime`): snapshot ``i`` is drawn from a child stream
    of ``(rng, i)``, so the pool is bit-identical for any worker count or
    chunk size.  The split-stream dispatch lives in one place —
    :meth:`repro.diffusion.models.DiffusionModel.sample_snapshots` — and
    this function is the IC shorthand for it.
    """
    require_positive_int(count, "count")
    if jobs is None and executor is None:
        if telemetry is not None and telemetry.enabled:
            telemetry.incr("snapshot.samples", count)
        return [sample_snapshot(graph, rng, sample_size=sample_size) for _ in range(count)]

    from .models import INDEPENDENT_CASCADE

    return INDEPENDENT_CASCADE.sample_snapshots(
        graph,
        count,
        rng,
        sample_size=sample_size,
        jobs=jobs,
        executor=executor,
        telemetry=telemetry,
    )


def reachable_set(
    snapshot: Snapshot,
    seeds: tuple[int, ...] | list[int] | set[int],
    *,
    cost: TraversalCost | None = None,
    blocked: np.ndarray | None = None,
) -> set[int]:
    """Vertices reachable from ``seeds`` in ``snapshot`` (including the seeds).

    ``blocked`` is an optional boolean mask of vertices to treat as removed;
    the Snapshot graph-reduction update (Section 3.4.3) uses it to exclude
    vertices already reachable from previously chosen seeds.
    """
    return set(reachable_vertices(snapshot, seeds, cost=cost, blocked=blocked))


def reachability_scratch(num_vertices: int) -> tuple[np.ndarray, np.ndarray]:
    """Reusable ``(visited, slot)`` scratch pair for reachability queries.

    Callers that issue many queries against snapshots of the same graph (the
    Snapshot estimator's per-candidate estimates, descendant counting) create
    one pair and pass it as ``scratch=``; the query then runs in time
    proportional to the reached set instead of paying an O(num_vertices)
    allocation and reset per call.  Not safe to share across threads.
    """
    return (
        np.zeros(num_vertices, dtype=bool),
        np.empty(num_vertices, dtype=np.int64),
    )


def reachable_vertices(
    snapshot: Snapshot,
    seeds: tuple[int, ...] | list[int] | set[int],
    *,
    cost: TraversalCost | None = None,
    blocked: np.ndarray | None = None,
    scratch: tuple[np.ndarray, np.ndarray] | None = None,
) -> list[int]:
    """Vertices reachable from ``seeds``, in BFS discovery order.

    The list form of :func:`reachable_set`.  With ``scratch`` (see
    :func:`reachability_scratch`) the visited marks are cleared again before
    returning — touching only the reached entries — so repeated queries do no
    per-call O(num_vertices) work.
    """
    seed_tuple = normalize_seed_set(seeds, snapshot.num_vertices)
    if scratch is None:
        visited = np.zeros(snapshot.num_vertices, dtype=bool)
        slot = np.empty(snapshot.num_vertices, dtype=np.int64)
        return _reachable_into(snapshot, seed_tuple, visited, slot, cost, blocked)
    visited, slot = scratch
    reached = _reachable_into(snapshot, seed_tuple, visited, slot, cost, blocked)
    visited[reached] = False
    return reached


def reachable_mask(
    snapshot: Snapshot,
    seeds: tuple[int, ...] | list[int] | set[int],
    *,
    cost: TraversalCost | None = None,
    blocked: np.ndarray | None = None,
) -> np.ndarray:
    """Boolean reachability mask from ``seeds`` (the array form of
    :func:`reachable_set`)."""
    visited = np.zeros(snapshot.num_vertices, dtype=bool)
    slot = np.empty(snapshot.num_vertices, dtype=np.int64)
    _reachable_into(
        snapshot,
        normalize_seed_set(seeds, snapshot.num_vertices),
        visited,
        slot,
        cost,
        blocked,
    )
    return visited


def _reachable_into(
    snapshot: Snapshot,
    seed_tuple: tuple[int, ...],
    visited: np.ndarray,
    slot: np.ndarray,
    cost: TraversalCost | None,
    blocked: np.ndarray | None,
) -> list[int]:
    """Whole-frontier BFS over the live-edge CSR, marking ``visited``.

    Each level scans all frontier out-edges with one gather, filters
    blocked/visited targets, and first-hit-deduplicates the next frontier
    (scalar per-vertex expansion below :data:`SCALAR_FRONTIER_LIMIT`).  Cost
    totals are identical to the historical per-vertex loop (one vertex
    examination per expanded vertex, one edge examination per scanned live
    out-edge).  ``visited`` must be ``False`` everywhere on entry; only
    reached entries are set, and the returned discovery-order list names
    exactly those entries.
    """
    frontier: list[int] = (
        [seed for seed in seed_tuple if not blocked[seed]]
        if blocked is not None
        else list(seed_tuple)
    )
    for seed in frontier:
        visited[seed] = True
    reached: list[int] = list(frontier)
    indptr = snapshot.indptr
    targets = snapshot.targets
    while frontier:
        if use_scalar_frontier(frontier):
            # Small frontier: plain per-vertex expansion beats the batched
            # gather's fixed overhead (no randomness involved here at all).
            next_frontier: list[int] = []
            edges_scanned = 0
            for vertex in frontier:
                row = targets[indptr[vertex] : indptr[vertex + 1]]
                edges_scanned += int(row.shape[0])
                for target in row.tolist():
                    if blocked is not None and blocked[target]:
                        continue
                    if not visited[target]:
                        visited[target] = True
                        next_frontier.append(target)
            if cost is not None:
                cost.add_vertices(len(frontier))
                cost.add_edges(edges_scanned)
        else:
            frontier_array = np.asarray(frontier, dtype=np.int64)
            edge_indices, _, total = frontier_edges(indptr, frontier_array)
            if cost is not None:
                cost.add_vertices(len(frontier))
                cost.add_edges(total)
            if total == 0:
                break
            candidates = targets[edge_indices]
            if blocked is not None:
                candidates = candidates[~blocked[candidates]]
            candidates = candidates[~visited[candidates]]
            new_vertices = first_hit(candidates, slot)
            visited[new_vertices] = True
            next_frontier = new_vertices.tolist()
        reached.extend(next_frontier)
        frontier = next_frontier
    return reached


def reachable_count(
    snapshot: Snapshot,
    seeds: tuple[int, ...] | list[int] | set[int],
    *,
    cost: TraversalCost | None = None,
    blocked: np.ndarray | None = None,
    scratch: tuple[np.ndarray, np.ndarray] | None = None,
) -> int:
    """Number of vertices reachable from ``seeds`` in ``snapshot``.

    Pass ``scratch`` (see :func:`reachability_scratch`) when issuing many
    counts against snapshots of the same graph.
    """
    return len(
        reachable_vertices(snapshot, seeds, cost=cost, blocked=blocked, scratch=scratch)
    )


def single_source_reachability(
    snapshot: Snapshot, *, cost: TraversalCost | None = None
) -> np.ndarray:
    """Reachable-set size from every single vertex (descendant counting).

    This is the quadratic-in-the-worst-case computation the paper notes is the
    bottleneck of Snapshot's first greedy iteration.  Returned as an integer
    array of length ``num_vertices``.
    """
    counts = np.zeros(snapshot.num_vertices, dtype=np.int64)
    scratch = reachability_scratch(snapshot.num_vertices)
    for vertex in range(snapshot.num_vertices):
        counts[vertex] = reachable_count(snapshot, (vertex,), cost=cost, scratch=scratch)
    return counts
