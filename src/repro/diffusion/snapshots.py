"""Live-edge snapshot sampling and forward reachability (Section 3.4).

A *snapshot* (random graph) ``G ~ G`` keeps each edge of the influence graph
independently with its probability.  Snapshot-type algorithms draw ``tau``
snapshots up front, store their live edges, and estimate the influence spread
of ``S`` as the average over snapshots of the number of vertices reachable
from ``S``.

Cost conventions (Table 8): generating a snapshot streams the edge list with
one coin flip per edge but performs *no graph traversal*, so it contributes to
sample size (edges stored) but not to traversal cost.  Computing a reachable
set is a BFS over live edges: every scanned vertex counts one vertex
examination and every scanned live out-edge counts one edge examination.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from .._validation import normalize_seed_set, require_positive_int
from ..graphs.influence_graph import InfluenceGraph
from .costs import SampleSize, TraversalCost
from .random_source import RandomSource


@dataclass(frozen=True)
class Snapshot:
    """One sampled live-edge graph in CSR form (targets only, probabilities dropped)."""

    num_vertices: int
    indptr: np.ndarray
    targets: np.ndarray

    @property
    def num_live_edges(self) -> int:
        """Number of live (kept) edges in this snapshot."""
        return int(self.targets.shape[0])

    def out_neighbors(self, vertex: int) -> np.ndarray:
        """Live out-neighbours of ``vertex`` in this snapshot."""
        return self.targets[self.indptr[vertex] : self.indptr[vertex + 1]]


def snapshot_from_live_edges(
    num_vertices: int, live_sources: np.ndarray, live_targets: np.ndarray
) -> Snapshot:
    """Assemble a :class:`Snapshot` from an unordered live-edge list.

    The single place where live edges become forward CSR; both the IC edge
    filter (:func:`sample_snapshot`) and the LT parent-array conversion
    (:meth:`repro.diffusion.linear_threshold.LTSnapshot.to_snapshot`) build
    through it, so the two models cannot drift to different representations.
    """
    live_counts = np.zeros(num_vertices, dtype=np.int64)
    np.add.at(live_counts, live_sources, 1)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(live_counts, out=indptr[1:])
    order = np.argsort(live_sources, kind="stable")
    return Snapshot(
        num_vertices=num_vertices,
        indptr=indptr,
        targets=np.asarray(live_targets)[order].astype(np.int64, copy=True),
    )


def sample_snapshot(
    graph: InfluenceGraph,
    rng: RandomSource | np.random.Generator,
    *,
    sample_size: SampleSize | None = None,
) -> Snapshot:
    """Draw one snapshot ``G ~ G`` by keeping each edge with its probability."""
    generator = rng.generator if isinstance(rng, RandomSource) else rng
    indptr, targets, probs = graph.out_csr
    draws = generator.random(graph.num_edges)
    live_mask = draws < probs
    # Edge i in forward CSR order belongs to the source vertex whose indptr
    # range contains i; np.repeat reconstructs that source column cheaply.
    sources = np.repeat(np.arange(graph.num_vertices), np.diff(indptr))
    snapshot = snapshot_from_live_edges(
        graph.num_vertices, sources[live_mask], targets[live_mask]
    )
    if sample_size is not None:
        sample_size.add_edges(snapshot.num_live_edges)
    return snapshot


def sample_snapshots(
    graph: InfluenceGraph,
    count: int,
    rng: RandomSource | np.random.Generator,
    *,
    sample_size: SampleSize | None = None,
    jobs: int | None = None,
    executor: "Executor | None" = None,
) -> list[Snapshot]:
    """Draw ``count`` independent snapshots.

    Defaults to the historical sequential single-stream draw.  Passing
    ``jobs`` or ``executor`` opts into the runtime's split-stream contract
    (see :mod:`repro.runtime`): snapshot ``i`` is drawn from a child stream
    of ``(rng, i)``, so the pool is bit-identical for any worker count or
    chunk size.  The split-stream dispatch lives in one place —
    :meth:`repro.diffusion.models.DiffusionModel.sample_snapshots` — and
    this function is the IC shorthand for it.
    """
    require_positive_int(count, "count")
    if jobs is None and executor is None:
        return [sample_snapshot(graph, rng, sample_size=sample_size) for _ in range(count)]

    from .models import INDEPENDENT_CASCADE

    return INDEPENDENT_CASCADE.sample_snapshots(
        graph, count, rng, sample_size=sample_size, jobs=jobs, executor=executor
    )


def reachable_set(
    snapshot: Snapshot,
    seeds: tuple[int, ...] | list[int] | set[int],
    *,
    cost: TraversalCost | None = None,
    blocked: np.ndarray | None = None,
) -> set[int]:
    """Vertices reachable from ``seeds`` in ``snapshot`` (including the seeds).

    ``blocked`` is an optional boolean mask of vertices to treat as removed;
    the Snapshot graph-reduction update (Section 3.4.3) uses it to exclude
    vertices already reachable from previously chosen seeds.
    """
    seed_tuple = normalize_seed_set(seeds, snapshot.num_vertices)
    visited: set[int] = set()
    queue: deque[int] = deque()
    for seed in seed_tuple:
        if blocked is not None and blocked[seed]:
            continue
        if seed not in visited:
            visited.add(seed)
            queue.append(seed)
    while queue:
        vertex = queue.popleft()
        if cost is not None:
            cost.add_vertices(1)
        neighbours = snapshot.out_neighbors(vertex)
        if cost is not None:
            cost.add_edges(int(neighbours.shape[0]))
        for target in neighbours:
            target = int(target)
            if blocked is not None and blocked[target]:
                continue
            if target not in visited:
                visited.add(target)
                queue.append(target)
    return visited


def reachable_count(
    snapshot: Snapshot,
    seeds: tuple[int, ...] | list[int] | set[int],
    *,
    cost: TraversalCost | None = None,
    blocked: np.ndarray | None = None,
) -> int:
    """Number of vertices reachable from ``seeds`` in ``snapshot``."""
    return len(reachable_set(snapshot, seeds, cost=cost, blocked=blocked))


def single_source_reachability(
    snapshot: Snapshot, *, cost: TraversalCost | None = None
) -> np.ndarray:
    """Reachable-set size from every single vertex (descendant counting).

    This is the quadratic-in-the-worst-case computation the paper notes is the
    bottleneck of Snapshot's first greedy iteration.  Returned as an integer
    array of length ``num_vertices``.
    """
    counts = np.zeros(snapshot.num_vertices, dtype=np.int64)
    for vertex in range(snapshot.num_vertices):
        counts[vertex] = reachable_count(snapshot, (vertex,), cost=cost)
    return counts
