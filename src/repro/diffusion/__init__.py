"""Diffusion substrate: IC cascades, snapshots, RR sets, exact spread, cost accounting."""

from .cascade import CascadeResult, activation_probabilities, simulate_cascade, simulate_spread
from .costs import CostReport, SampleSize, TraversalCost
from .exact import (
    MAX_EXACT_EDGES,
    exact_optimal_seed_set,
    exact_single_vertex_spreads,
    exact_spread,
)
from .linear_threshold import (
    LTCascadeResult,
    LTRRSet,
    LTSnapshot,
    exact_lt_spread,
    lt_reachable_set,
    sample_lt_rr_set,
    sample_lt_snapshot,
    simulate_lt_cascade,
    simulate_lt_spread,
    validate_lt_weights,
)
from .random_source import RandomSource, trial_seeds
from .reverse import RRSet, RRSetCollection, sample_rr_set, sample_rr_sets
from .snapshots import (
    Snapshot,
    reachable_count,
    reachable_set,
    sample_snapshot,
    sample_snapshots,
    single_source_reachability,
)

__all__ = [
    "LTCascadeResult",
    "LTSnapshot",
    "LTRRSet",
    "simulate_lt_cascade",
    "simulate_lt_spread",
    "sample_lt_snapshot",
    "sample_lt_rr_set",
    "lt_reachable_set",
    "exact_lt_spread",
    "validate_lt_weights",
    "CascadeResult",
    "simulate_cascade",
    "simulate_spread",
    "activation_probabilities",
    "TraversalCost",
    "SampleSize",
    "CostReport",
    "RandomSource",
    "trial_seeds",
    "Snapshot",
    "sample_snapshot",
    "sample_snapshots",
    "reachable_set",
    "reachable_count",
    "single_source_reachability",
    "RRSet",
    "RRSetCollection",
    "sample_rr_set",
    "sample_rr_sets",
    "exact_spread",
    "exact_single_vertex_spreads",
    "exact_optimal_seed_set",
    "MAX_EXACT_EDGES",
]
