"""repro: reproduction of "The Solution Distribution of Influence Maximization"
(Ohsaka, SIGMOD 2020).

The package implements the three algorithmic approaches studied by the paper
(Oneshot, Snapshot, Reverse Influence Sampling) on top of a self-contained
influence-graph and diffusion substrate, plus the paper's experimental
methodology: repeated-trial seed-set distributions, Shannon-entropy decay,
influence distributions, comparable number/size ratios, and
machine-independent traversal-cost accounting.

Quickstart (declarative API)::

    import repro

    spec = repro.MaximizeSpec(
        graph=repro.GraphSpec(dataset="karate", probability="uc0.1"),
        estimator=repro.EstimatorSpec(approach="ris", num_samples=4096),
        k=4,
    )
    result = repro.run(spec)
    print(result.to_text())       # human-readable table
    print(result.to_json())       # machine-readable document

Imperative quickstart (the underlying building blocks)::

    from repro import (
        load_dataset, assign_probabilities, RISEstimator, greedy_maximize,
    )

    graph = assign_probabilities(load_dataset("karate"), "uc0.1")
    result = greedy_maximize(graph, k=4, estimator=RISEstimator(4096), seed=0)
    print(result.seed_set)

Exports resolve lazily (PEP 562): ``import repro`` touches no submodule, so
dependency-light tooling — ``python -m repro.lint`` in particular — runs in a
bare interpreter without pulling in numpy.
"""

from __future__ import annotations

from importlib import import_module
from typing import Any

__version__ = "1.0.0"

#: Public name -> defining submodule; resolved on first attribute access.
_EXPORTS: dict[str, str] = {
    # exceptions
    "ReproError": "exceptions",
    "SpecValidationError": "exceptions",
    # declarative API
    "run": "api",
    "GraphSpec": "api",
    "EstimatorSpec": "api",
    "StatsSpec": "api",
    "MaximizeSpec": "api",
    "TrialsSpec": "api",
    "SweepSpec": "api",
    "TraversalSpec": "api",
    "ExperimentSpec": "api",
    "ExperimentResult": "api",
    "spec_from_dict": "api",
    "load_spec": "api",
    "RunContext": "context",
    "resolve_context": "context",
    # graphs
    "InfluenceGraph": "graphs",
    "GraphBuilder": "graphs",
    "graph_from_edge_list": "graphs",
    "read_edge_list": "graphs",
    "write_edge_list": "graphs",
    "load_dataset": "graphs",
    "list_datasets": "graphs",
    "assign_probabilities": "graphs",
    "network_statistics": "graphs",
    # diffusion
    "DiffusionModel": "diffusion",
    "IndependentCascade": "diffusion",
    "LinearThreshold": "diffusion",
    "INDEPENDENT_CASCADE": "diffusion",
    "LINEAR_THRESHOLD": "diffusion",
    "available_models": "diffusion",
    "get_model": "diffusion",
    "register_model": "diffusion",
    "resolve_model": "diffusion",
    "RandomSource": "diffusion",
    "TraversalCost": "diffusion",
    "SampleSize": "diffusion",
    "simulate_cascade": "diffusion",
    "simulate_cascades": "diffusion",
    "simulate_spread": "diffusion",
    "sample_snapshot": "diffusion",
    "sample_snapshots": "diffusion",
    "RRSet": "diffusion",
    "RRSetCollection": "diffusion",
    "sample_rr_set": "diffusion",
    "sample_rr_sets": "diffusion",
    "exact_spread": "diffusion",
    # algorithms
    "InfluenceEstimator": "algorithms",
    "GreedyResult": "algorithms",
    "greedy_maximize": "algorithms",
    "celf_maximize": "algorithms",
    "CELFStatistics": "algorithms",
    "OneshotEstimator": "algorithms",
    "SnapshotEstimator": "algorithms",
    "RISEstimator": "algorithms",
    "ExactEstimator": "algorithms",
    "DegreeEstimator": "algorithms",
    "WeightedDegreeEstimator": "algorithms",
    "SingleDiscountEstimator": "algorithms",
    "RandomEstimator": "algorithms",
    "exhaustive_optimum": "algorithms",
    # estimation
    "RRPoolOracle": "estimation",
    "MonteCarloEstimate": "estimation",
    "monte_carlo_spread": "estimation",
    # experiments
    "run_trials": "experiments",
    "TrialSet": "experiments",
    "SeedSetDistribution": "experiments",
    "shannon_entropy": "experiments",
    "InfluenceDistribution": "experiments",
    "SweepResult": "experiments",
    "sweep_sample_numbers": "experiments",
    "powers_of_two": "experiments",
    "least_sample_number": "experiments",
    "comparable_ratio_curve": "experiments",
    # observability
    "Telemetry": "obs",
    "NullTelemetry": "obs",
    "NULL_TELEMETRY": "obs",
    "TelemetrySnapshot": "obs",
    "as_telemetry": "obs",
    "atomic_write_text": "obs",
    "atomic_write_json": "obs",
    "write_trace": "obs",
    "read_trace": "obs",
    "validate_trace": "obs",
    # runtime
    "Executor": "runtime",
    "SerialExecutor": "runtime",
    "ParallelExecutor": "runtime",
    "executor_scope": "runtime",
}

__all__ = ["__version__", *_EXPORTS]


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(import_module(f".{module_name}", __name__), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted({*globals(), *_EXPORTS})
