"""repro: reproduction of "The Solution Distribution of Influence Maximization"
(Ohsaka, SIGMOD 2020).

The package implements the three algorithmic approaches studied by the paper
(Oneshot, Snapshot, Reverse Influence Sampling) on top of a self-contained
influence-graph and diffusion substrate, plus the paper's experimental
methodology: repeated-trial seed-set distributions, Shannon-entropy decay,
influence distributions, comparable number/size ratios, and
machine-independent traversal-cost accounting.

Quickstart (declarative API)::

    import repro

    spec = repro.MaximizeSpec(
        graph=repro.GraphSpec(dataset="karate", probability="uc0.1"),
        estimator=repro.EstimatorSpec(approach="ris", num_samples=4096),
        k=4,
    )
    result = repro.run(spec)
    print(result.to_text())       # human-readable table
    print(result.to_json())       # machine-readable document

Imperative quickstart (the underlying building blocks)::

    from repro import (
        load_dataset, assign_probabilities, RISEstimator, greedy_maximize,
    )

    graph = assign_probabilities(load_dataset("karate"), "uc0.1")
    result = greedy_maximize(graph, k=4, estimator=RISEstimator(4096), seed=0)
    print(result.seed_set)
"""

from .api import (
    EstimatorSpec,
    ExperimentResult,
    ExperimentSpec,
    GraphSpec,
    MaximizeSpec,
    StatsSpec,
    SweepSpec,
    TraversalSpec,
    TrialsSpec,
    load_spec,
    run,
    spec_from_dict,
)
from .context import RunContext, resolve_context
from .exceptions import ReproError, SpecValidationError
from .algorithms import (
    CELFStatistics,
    DegreeEstimator,
    ExactEstimator,
    GreedyResult,
    InfluenceEstimator,
    OneshotEstimator,
    RandomEstimator,
    RISEstimator,
    SingleDiscountEstimator,
    SnapshotEstimator,
    WeightedDegreeEstimator,
    celf_maximize,
    exhaustive_optimum,
    greedy_maximize,
)
from .diffusion import (
    INDEPENDENT_CASCADE,
    LINEAR_THRESHOLD,
    DiffusionModel,
    IndependentCascade,
    LinearThreshold,
    RandomSource,
    RRSet,
    RRSetCollection,
    SampleSize,
    TraversalCost,
    available_models,
    exact_spread,
    get_model,
    register_model,
    resolve_model,
    sample_rr_set,
    sample_rr_sets,
    sample_snapshot,
    sample_snapshots,
    simulate_cascade,
    simulate_cascades,
    simulate_spread,
)
from .estimation import MonteCarloEstimate, RRPoolOracle, monte_carlo_spread
from .experiments import (
    InfluenceDistribution,
    SeedSetDistribution,
    SweepResult,
    TrialSet,
    comparable_ratio_curve,
    least_sample_number,
    powers_of_two,
    run_trials,
    shannon_entropy,
    sweep_sample_numbers,
)
from .obs import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    TelemetrySnapshot,
    as_telemetry,
    atomic_write_json,
    atomic_write_text,
    read_trace,
    validate_trace,
    write_trace,
)
from .graphs import (
    GraphBuilder,
    InfluenceGraph,
    assign_probabilities,
    graph_from_edge_list,
    list_datasets,
    load_dataset,
    network_statistics,
    read_edge_list,
    write_edge_list,
)
from .runtime import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    executor_scope,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "SpecValidationError",
    # declarative API
    "run",
    "RunContext",
    "resolve_context",
    "GraphSpec",
    "EstimatorSpec",
    "StatsSpec",
    "MaximizeSpec",
    "TrialsSpec",
    "SweepSpec",
    "TraversalSpec",
    "ExperimentSpec",
    "ExperimentResult",
    "spec_from_dict",
    "load_spec",
    # graphs
    "InfluenceGraph",
    "GraphBuilder",
    "graph_from_edge_list",
    "read_edge_list",
    "write_edge_list",
    "load_dataset",
    "list_datasets",
    "assign_probabilities",
    "network_statistics",
    # diffusion
    "DiffusionModel",
    "IndependentCascade",
    "LinearThreshold",
    "INDEPENDENT_CASCADE",
    "LINEAR_THRESHOLD",
    "available_models",
    "get_model",
    "register_model",
    "resolve_model",
    "RandomSource",
    "TraversalCost",
    "SampleSize",
    "simulate_cascade",
    "simulate_cascades",
    "simulate_spread",
    "sample_snapshot",
    "sample_snapshots",
    "RRSet",
    "RRSetCollection",
    "sample_rr_set",
    "sample_rr_sets",
    "exact_spread",
    # algorithms
    "InfluenceEstimator",
    "GreedyResult",
    "greedy_maximize",
    "celf_maximize",
    "CELFStatistics",
    "OneshotEstimator",
    "SnapshotEstimator",
    "RISEstimator",
    "ExactEstimator",
    "DegreeEstimator",
    "WeightedDegreeEstimator",
    "SingleDiscountEstimator",
    "RandomEstimator",
    "exhaustive_optimum",
    # estimation
    "RRPoolOracle",
    "MonteCarloEstimate",
    "monte_carlo_spread",
    # experiments
    "run_trials",
    "TrialSet",
    "SeedSetDistribution",
    "shannon_entropy",
    "InfluenceDistribution",
    "SweepResult",
    "sweep_sample_numbers",
    "powers_of_two",
    "least_sample_number",
    "comparable_ratio_curve",
    # observability
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "TelemetrySnapshot",
    "as_telemetry",
    "atomic_write_text",
    "atomic_write_json",
    "write_trace",
    "read_trace",
    "validate_trace",
    # runtime
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "executor_scope",
]
