"""Forward Monte-Carlo spread estimation with convergence diagnostics.

A thin convenience layer over the forward-cascade primitive of any
:class:`~repro.diffusion.models.DiffusionModel` (IC by default) that also
reports a standard error, so examples and tests can decide whether a given
simulation budget suffices.  The RR-pool oracle
(:mod:`repro.estimation.oracle`) is preferred for scoring many seed sets on
the same graph; forward Monte-Carlo is preferred for scoring one seed set on
a graph where building a pool would be wasteful.

Batched parallelism: cascades are independent, so
:func:`monte_carlo_spread` accepts ``jobs=``/``executor=`` and dispatches
chunks of simulations through :mod:`repro.runtime`.  Each simulation index
draws from its own child stream and per-chunk activation totals are exact
integers, so the estimate is bit-identical for any worker count or chunk
size (and differs from the default single-stream sequential draw, which is
preserved when neither parameter is given).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._validation import normalize_seed_set, require_positive_int
from ..context import RunContext, resolve_context
from ..diffusion.models import DiffusionModel, resolve_model
from ..diffusion.random_source import RandomSource
from ..graphs.influence_graph import InfluenceGraph


@dataclass(frozen=True)
class MonteCarloEstimate:
    """Mean spread, sample standard deviation, and standard error."""

    mean: float
    std: float
    num_simulations: int

    @property
    def standard_error(self) -> float:
        """Standard error of the mean.

        A single simulation carries no variance information, so the standard
        error is infinite (not zero) for ``num_simulations <= 1``.
        """
        if self.num_simulations <= 1:
            return float("inf")
        return self.std / math.sqrt(self.num_simulations)

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval at the given z value.

        With ``num_simulations <= 1`` there is no variance estimate, and the
        infinite standard error would yield the uninformative
        ``(-inf, inf)``; instead the interval degenerates to the point
        estimate ``(mean, mean)``, making explicit that the estimate has a
        location but no measured spread.  Callers needing a genuine interval
        must run at least two simulations.
        """
        if self.num_simulations <= 1:
            return (self.mean, self.mean)
        radius = z * self.standard_error
        return (self.mean - radius, self.mean + radius)


def _cascade_chunk_worker(
    payload: tuple[DiffusionModel, InfluenceGraph, tuple[int, ...]],
    root_key: tuple,
    start: int,
    stop: int,
) -> tuple[int, int]:
    """Activation totals for simulation indices ``start..stop-1``.

    Returns integer ``(sum, sum of squares)`` so the parent-side reduction is
    exact regardless of chunk boundaries.  ``batch_mode`` is pinned to
    ``"scalar"``: the scalar split-stream contract is per *simulation*, and a
    ``REPRO_BITPARALLEL`` environment variable leaking into worker processes
    must not change it (the bit-parallel path has its own word worker below).
    """
    from ..runtime.seeding import child_generator

    model, graph, seed_set = payload
    results = model.simulate_cascades(
        graph,
        seed_set,
        stop - start,
        streams=[child_generator(root_key, index) for index in range(start, stop)],
        batch_mode="scalar",
    )
    total = 0
    total_squared = 0
    for result in results:
        total += result.num_activated
        total_squared += result.num_activated * result.num_activated
    return total, total_squared


def _cascade_word_chunk_worker(
    payload: tuple[DiffusionModel, InfluenceGraph, tuple[int, ...], int],
    root_key: tuple,
    start: int,
    stop: int,
) -> tuple[int, int]:
    """Bit-parallel activation totals for **word** indices ``start..stop-1``.

    The runtime task unit is the 64-world word: word ``i`` covers simulation
    indices ``64*i .. min(64*(i+1), count) - 1`` and draws all of its live
    words from the child stream of ``(root_key, i)``, so totals are
    bit-identical for any worker count or chunk layout.
    """
    from ..diffusion.bitparallel import LANES_PER_WORD, batched_cascade_counts
    from ..runtime.seeding import child_generator

    model, graph, seed_set, count = payload
    total = 0
    total_squared = 0
    for word_index in range(start, stop):
        lanes = min(LANES_PER_WORD, count - word_index * LANES_PER_WORD)
        counts = batched_cascade_counts(
            graph,
            seed_set,
            lanes,
            child_generator(root_key, word_index),
            lambda n, generator: model.forward_live_words(graph, n, generator),
        )
        total += int(counts.sum())
        total_squared += int((counts * counts).sum())
    return total, total_squared


def monte_carlo_spread(
    graph: InfluenceGraph,
    seed_set: tuple[int, ...] | list[int] | set[int],
    num_simulations: int,
    *,
    seed: int | RandomSource | None = None,
    model: "str | DiffusionModel | None" = None,
    jobs: int | None = None,
    executor: "Executor | None" = None,
    context: RunContext | None = None,
    batch_mode: str | None = None,
) -> MonteCarloEstimate:
    """Estimate ``Inf(seed_set)`` from ``num_simulations`` forward cascades.

    ``model`` selects the diffusion model (name, instance, or ``None`` for the
    paper's independent cascade).  ``jobs``/``executor`` opt into the parallel
    runtime's split-stream contract (simulation ``i`` uses a child stream of
    ``(seed, i)``); the default runs all cascades sequentially from one
    stream.  ``batch_mode="bitparallel"`` opts into the 64-worlds-per-word
    kernel (own draw-order contract; under ``jobs`` the split-stream task
    unit becomes the 64-world word, keeping any worker count bit-identical).
    ``context`` supplies any of the knobs left at ``None`` (explicit kwargs
    win; ``seed`` defaults to ``0`` without either).
    """
    require_positive_int(num_simulations, "num_simulations")
    seed, jobs, executor, model, telemetry, batch_mode = resolve_context(
        context,
        seed=seed,
        jobs=jobs,
        executor=executor,
        model=model,
        batch_mode=batch_mode,
    )
    from ..diffusion.bitparallel import (
        BITPARALLEL,
        batched_cascade_counts,
        resolve_batch_mode,
        word_spans,
    )
    from ..obs import as_telemetry

    tel = as_telemetry(telemetry)
    diffusion = resolve_model(model)
    diffusion.validate(graph)
    bitparallel = resolve_batch_mode(batch_mode) == BITPARALLEL
    tel.incr("mc.simulations", num_simulations)
    if bitparallel and tel.enabled:
        # Recorded at the dispatch seam, before the serial-vs-chunked split,
        # so these counters are deterministic across every jobs value.
        tel.incr("bitparallel.words", len(word_spans(num_simulations)))
        tel.incr("bitparallel.lanes_used", num_simulations)
    with tel.span("mc.spread"):
        if jobs is None and executor is None:
            source = seed if isinstance(seed, RandomSource) else RandomSource(seed)
            total = 0
            total_squared = 0
            if bitparallel:
                seeds = normalize_seed_set(seed_set, graph.num_vertices)
                with tel.span("bitparallel.kernel"):
                    counts = batched_cascade_counts(
                        graph,
                        seeds,
                        num_simulations,
                        source.generator,
                        lambda lanes, generator: diffusion.forward_live_words(
                            graph, lanes, generator
                        ),
                    )
                total = int(counts.sum())
                total_squared = int((counts * counts).sum())
            else:
                # One batched call (identical stream consumption to the
                # historical per-simulation loop; the batch only amortizes
                # per-call overhead).  batch_mode is pinned so an explicit
                # "scalar" request beats a set REPRO_BITPARALLEL variable.
                for result in diffusion.simulate_cascades(
                    graph, seed_set, num_simulations, source.generator,
                    batch_mode="scalar",
                ):
                    total += result.num_activated
                    total_squared += result.num_activated * result.num_activated
        else:
            from ..runtime.engine import run_seeded_tasks

            seeds = normalize_seed_set(seed_set, graph.num_vertices)
            if bitparallel:
                worker = _cascade_word_chunk_worker
                task_count = len(word_spans(num_simulations))
                payload = (diffusion, graph, seeds, num_simulations)
            else:
                worker = _cascade_chunk_worker
                task_count = num_simulations
                payload = (diffusion, graph, seeds)
            total = 0
            total_squared = 0
            for chunk_total, chunk_squared in run_seeded_tasks(
                worker,
                task_count,
                seed,
                jobs=jobs,
                executor=executor,
                payload=payload,
                telemetry=telemetry,
            ):
                total += chunk_total
                total_squared += chunk_squared
    mean = total / num_simulations
    variance = max(0.0, total_squared / num_simulations - mean * mean)
    if num_simulations > 1:
        variance *= num_simulations / (num_simulations - 1)
    return MonteCarloEstimate(mean=mean, std=math.sqrt(variance), num_simulations=num_simulations)
