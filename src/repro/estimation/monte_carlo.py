"""Forward Monte-Carlo spread estimation with convergence diagnostics.

A thin convenience layer over the forward-cascade primitive of any
:class:`~repro.diffusion.models.DiffusionModel` (IC by default) that also
reports a standard error, so examples and tests can decide whether a given
simulation budget suffices.  The RR-pool oracle
(:mod:`repro.estimation.oracle`) is preferred for scoring many seed sets on
the same graph; forward Monte-Carlo is preferred for scoring one seed set on
a graph where building a pool would be wasteful.

Batched parallelism: cascades are independent, so
:func:`monte_carlo_spread` accepts ``jobs=``/``executor=`` and dispatches
chunks of simulations through :mod:`repro.runtime`.  Each simulation index
draws from its own child stream and per-chunk activation totals are exact
integers, so the estimate is bit-identical for any worker count or chunk
size (and differs from the default single-stream sequential draw, which is
preserved when neither parameter is given).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._validation import normalize_seed_set, require_positive_int
from ..context import RunContext, resolve_context
from ..diffusion.models import DiffusionModel, resolve_model
from ..diffusion.random_source import RandomSource
from ..graphs.influence_graph import InfluenceGraph


@dataclass(frozen=True)
class MonteCarloEstimate:
    """Mean spread, sample standard deviation, and standard error."""

    mean: float
    std: float
    num_simulations: int

    @property
    def standard_error(self) -> float:
        """Standard error of the mean.

        A single simulation carries no variance information, so the standard
        error is infinite (not zero) for ``num_simulations <= 1``.
        """
        if self.num_simulations <= 1:
            return float("inf")
        return self.std / math.sqrt(self.num_simulations)

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval at the given z value.

        With ``num_simulations <= 1`` there is no variance estimate, and the
        infinite standard error would yield the uninformative
        ``(-inf, inf)``; instead the interval degenerates to the point
        estimate ``(mean, mean)``, making explicit that the estimate has a
        location but no measured spread.  Callers needing a genuine interval
        must run at least two simulations.
        """
        if self.num_simulations <= 1:
            return (self.mean, self.mean)
        radius = z * self.standard_error
        return (self.mean - radius, self.mean + radius)


def _cascade_chunk_worker(
    payload: tuple[DiffusionModel, InfluenceGraph, tuple[int, ...]],
    root_key: tuple,
    start: int,
    stop: int,
) -> tuple[int, int]:
    """Activation totals for simulation indices ``start..stop-1``.

    Returns integer ``(sum, sum of squares)`` so the parent-side reduction is
    exact regardless of chunk boundaries.
    """
    from ..runtime.seeding import child_generator

    model, graph, seed_set = payload
    results = model.simulate_cascades(
        graph,
        seed_set,
        stop - start,
        streams=[child_generator(root_key, index) for index in range(start, stop)],
    )
    total = 0
    total_squared = 0
    for result in results:
        total += result.num_activated
        total_squared += result.num_activated * result.num_activated
    return total, total_squared


def monte_carlo_spread(
    graph: InfluenceGraph,
    seed_set: tuple[int, ...] | list[int] | set[int],
    num_simulations: int,
    *,
    seed: int | RandomSource | None = None,
    model: "str | DiffusionModel | None" = None,
    jobs: int | None = None,
    executor: "Executor | None" = None,
    context: RunContext | None = None,
) -> MonteCarloEstimate:
    """Estimate ``Inf(seed_set)`` from ``num_simulations`` forward cascades.

    ``model`` selects the diffusion model (name, instance, or ``None`` for the
    paper's independent cascade).  ``jobs``/``executor`` opt into the parallel
    runtime's split-stream contract (simulation ``i`` uses a child stream of
    ``(seed, i)``); the default runs all cascades sequentially from one
    stream.  ``context`` supplies any of the four knobs left at ``None``
    (explicit kwargs win; ``seed`` defaults to ``0`` without either).
    """
    require_positive_int(num_simulations, "num_simulations")
    seed, jobs, executor, model, telemetry = resolve_context(
        context, seed=seed, jobs=jobs, executor=executor, model=model
    )
    from ..obs import as_telemetry

    tel = as_telemetry(telemetry)
    diffusion = resolve_model(model)
    diffusion.validate(graph)
    tel.incr("mc.simulations", num_simulations)
    with tel.span("mc.spread"):
        if jobs is None and executor is None:
            source = seed if isinstance(seed, RandomSource) else RandomSource(seed)
            total = 0
            total_squared = 0
            # One batched call (identical stream consumption to the historical
            # per-simulation loop; the batch only amortizes per-call overhead).
            for result in diffusion.simulate_cascades(
                graph, seed_set, num_simulations, source.generator
            ):
                total += result.num_activated
                total_squared += result.num_activated * result.num_activated
        else:
            from ..runtime.engine import run_seeded_tasks

            seeds = normalize_seed_set(seed_set, graph.num_vertices)
            total = 0
            total_squared = 0
            for chunk_total, chunk_squared in run_seeded_tasks(
                _cascade_chunk_worker,
                num_simulations,
                seed,
                jobs=jobs,
                executor=executor,
                payload=(diffusion, graph, seeds),
                telemetry=telemetry,
            ):
                total += chunk_total
                total_squared += chunk_squared
    mean = total / num_simulations
    variance = max(0.0, total_squared / num_simulations - mean * mean)
    if num_simulations > 1:
        variance *= num_simulations / (num_simulations - 1)
    return MonteCarloEstimate(mean=mean, std=math.sqrt(variance), num_simulations=num_simulations)
