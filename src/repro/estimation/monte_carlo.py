"""Forward Monte-Carlo spread estimation with convergence diagnostics.

A thin convenience layer over :func:`repro.diffusion.cascade.simulate_spread`
that also reports a standard error, so examples and tests can decide whether
a given simulation budget suffices.  The RR-pool oracle
(:mod:`repro.estimation.oracle`) is preferred for scoring many seed sets on
the same graph; forward Monte-Carlo is preferred for scoring one seed set on
a graph where building a pool would be wasteful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._validation import require_positive_int
from ..diffusion.cascade import simulate_cascade
from ..diffusion.random_source import RandomSource
from ..graphs.influence_graph import InfluenceGraph


@dataclass(frozen=True)
class MonteCarloEstimate:
    """Mean spread, sample standard deviation, and standard error."""

    mean: float
    std: float
    num_simulations: int

    @property
    def standard_error(self) -> float:
        """Standard error of the mean."""
        if self.num_simulations <= 1:
            return float("inf")
        return self.std / math.sqrt(self.num_simulations)

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval at the given z value."""
        radius = z * self.standard_error
        return (self.mean - radius, self.mean + radius)


def monte_carlo_spread(
    graph: InfluenceGraph,
    seed_set: tuple[int, ...] | list[int] | set[int],
    num_simulations: int,
    *,
    seed: int | RandomSource = 0,
) -> MonteCarloEstimate:
    """Estimate ``Inf(seed_set)`` from ``num_simulations`` forward cascades."""
    require_positive_int(num_simulations, "num_simulations")
    source = seed if isinstance(seed, RandomSource) else RandomSource(seed)
    generator = source.generator
    total = 0.0
    total_squared = 0.0
    for _ in range(num_simulations):
        activated = simulate_cascade(graph, seed_set, generator).num_activated
        total += activated
        total_squared += activated * activated
    mean = total / num_simulations
    variance = max(0.0, total_squared / num_simulations - mean * mean)
    if num_simulations > 1:
        variance *= num_simulations / (num_simulations - 1)
    return MonteCarloEstimate(mean=mean, std=math.sqrt(variance), num_simulations=num_simulations)
