"""Ground-truth spread estimation: RR-pool oracle and Monte-Carlo estimates."""

from .monte_carlo import MonteCarloEstimate, monte_carlo_spread
from .oracle import RRPoolOracle, SpreadEstimate

__all__ = [
    "RRPoolOracle",
    "SpreadEstimate",
    "MonteCarloEstimate",
    "monte_carlo_spread",
]
