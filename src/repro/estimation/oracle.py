"""Ground-truth influence oracle used to score seed sets (Section 5.2).

The exact influence spread is #P-hard, so the paper scores every seed set
with a *shared* estimator: a pool of 10^7 RR sets per influence graph,
defining the unbiased estimate ``n * F_R(S)``.  Reusing the same pool across
all algorithms and trials guarantees that identical seed sets always receive
identical scores, so distributional comparisons are not blurred by scoring
noise.  The 99% confidence interval for the true spread around the estimate
is ``n * F_R(S) +- 1.29 * sqrt(n / pool_size) * ...`` — concretely the paper
states ``n * F_R(.) +- 1.29 * sqrt(1/10^7) * n`` for a Bernoulli fraction,
which we generalise to the configured pool size.

The default pool size here is much smaller than 10^7 (pure-Python RR-set
generation at that scale would dominate the session), but it is a constructor
argument, and :meth:`RRPoolOracle.confidence_radius` reports the loss of
precision explicitly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .._validation import normalize_seed_set, require_positive_int
from ..context import RunContext, resolve_context
from ..diffusion.models import DiffusionModel, resolve_model
from ..diffusion.random_source import RandomSource
from ..graphs.influence_graph import InfluenceGraph


@dataclass(frozen=True)
class SpreadEstimate:
    """A spread estimate with its symmetric 99% confidence radius."""

    value: float
    confidence_radius: float

    @property
    def lower(self) -> float:
        """Lower end of the 99% confidence interval (never below 0)."""
        return max(0.0, self.value - self.confidence_radius)

    @property
    def upper(self) -> float:
        """Upper end of the 99% confidence interval."""
        return self.value + self.confidence_radius


class RRPoolOracle:
    """Shared RR-set pool scoring oracle.

    Parameters
    ----------
    graph:
        The influence graph whose spreads are to be scored.
    pool_size:
        Number of RR sets in the pool (the paper uses 10^7).
    seed:
        PRNG seed for pool generation; the pool is deterministic given
        ``(graph, pool_size, seed, model)``.  ``None`` falls back to
        ``context.seed`` (historical default ``0``).
    model:
        Diffusion model (name, instance, or ``None`` for the paper's
        independent cascade).  The pool scores spreads *under that model*,
        and the graph's feasibility is validated up front.
    context:
        Optional :class:`~repro.context.RunContext` supplying any of
        ``seed``/``jobs``/``executor``/``model``/``batch_mode`` left at
        ``None``; explicit kwargs always win.
    batch_mode:
        ``"bitparallel"`` generates the pool 64 worlds per machine word (the
        opt-in fast path with its own draw-order contract — a *different*
        pool than the scalar stream, but the same RR-set distribution); the
        default defers to ``REPRO_BITPARALLEL`` and then ``"scalar"``.

    Notes
    -----
    Scoring a seed set costs ``O(sum of RR-set hits)`` thanks to an inverted
    vertex -> pool-index mapping; scoring many seed sets against the same pool
    is therefore cheap, which is exactly the paper's use case (10^3 trials
    times tens of sample numbers all scored against one pool).
    """

    #: z-value for a two-sided 99% confidence interval (as used in the paper).
    Z_99 = 2.58

    def __init__(
        self,
        graph: InfluenceGraph,
        pool_size: int = 100_000,
        *,
        seed: int | None = None,
        model: "str | DiffusionModel | None" = None,
        jobs: int | None = None,
        executor: "Executor | None" = None,
        context: RunContext | None = None,
        batch_mode: str | None = None,
    ) -> None:
        seed, jobs, executor, model, telemetry, batch_mode = resolve_context(
            context,
            seed=seed,
            jobs=jobs,
            executor=executor,
            model=model,
            batch_mode=batch_mode,
        )
        from ..diffusion.bitparallel import resolve_batch_mode
        from ..obs import as_telemetry

        batch_mode = resolve_batch_mode(batch_mode)
        tel = as_telemetry(telemetry)
        self._graph = graph
        self._model = resolve_model(model)
        self._model.validate(graph)
        self._pool_size = require_positive_int(pool_size, "pool_size")
        self._membership: list[list[int]] = [[] for _ in range(graph.num_vertices)]
        total_size = 0
        with tel.span("oracle.build"):
            if jobs is None and executor is None:
                # Default sequential path: generate in bounded batches through
                # the model's batched kernel (byte-identical single-stream
                # draws; with batch_mode="bitparallel", whole 64-world words)
                # and discard each batch once indexed, so peak memory stays
                # the membership index plus one batch rather than the whole
                # pool.
                rng = RandomSource(seed)
                pool_index = 0
                while pool_index < self._pool_size:
                    batch = min(4096, self._pool_size - pool_index)
                    for rr_set in self._model.sample_rr_sets(
                        graph, batch, rng, telemetry=telemetry, batch_mode=batch_mode
                    ):
                        total_size += rr_set.size
                        for vertex in rr_set.vertices:
                            self._membership[vertex].append(pool_index)
                        pool_index += 1
            else:
                # Parallel pool generation under the runtime's split-stream
                # contract (bit-identical for any worker count, but a different
                # pool than the sequential single-stream draw above).
                rr_sets = self._model.sample_rr_sets(
                    graph,
                    self._pool_size,
                    RandomSource(seed),
                    jobs=jobs,
                    executor=executor,
                    telemetry=telemetry,
                    batch_mode=batch_mode,
                )
                for pool_index, rr_set in enumerate(rr_sets):
                    total_size += rr_set.size
                    for vertex in rr_set.vertices:
                        self._membership[vertex].append(pool_index)
        if tel.enabled:
            tel.incr("oracle.rr_sets", self._pool_size)
            tel.incr("oracle.rr_vertices", total_size)
        self._total_size = total_size

    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> InfluenceGraph:
        """The graph this oracle scores."""
        return self._graph

    @property
    def model(self) -> DiffusionModel:
        """The diffusion model the pool was generated under."""
        return self._model

    @property
    def pool_size(self) -> int:
        """Number of RR sets in the pool."""
        return self._pool_size

    @property
    def average_rr_size(self) -> float:
        """Empirical EPT of the pool (mean RR-set size)."""
        return self._total_size / self._pool_size

    def confidence_radius(self) -> float:
        """Half-width of the 99% CI for a spread estimate from this pool.

        The hit indicator of one RR set is Bernoulli with success probability
        ``Inf(S)/n <= 1``; a conservative (p = 1/2) normal approximation gives
        radius ``z * n / (2 * sqrt(pool_size))``.
        """
        return self.Z_99 * self._graph.num_vertices / (2.0 * math.sqrt(self._pool_size))

    def coverage_count(self, seed_set: tuple[int, ...] | list[int] | set[int]) -> int:
        """Number of pool RR sets intersecting ``seed_set``."""
        seeds = normalize_seed_set(seed_set, self._graph.num_vertices)
        if len(seeds) == 1:
            return len(self._membership[seeds[0]])
        covered: set[int] = set()
        for vertex in seeds:
            covered.update(self._membership[vertex])
        return len(covered)

    def spread(self, seed_set: tuple[int, ...] | list[int] | set[int]) -> float:
        """Unbiased spread estimate ``n * F_R(seed_set)``."""
        return (
            self._graph.num_vertices
            * self.coverage_count(seed_set)
            / self._pool_size
        )

    def spread_with_confidence(
        self, seed_set: tuple[int, ...] | list[int] | set[int]
    ) -> SpreadEstimate:
        """Spread estimate packaged with its 99% confidence radius."""
        return SpreadEstimate(self.spread(seed_set), self.confidence_radius())

    def single_vertex_spreads(self) -> np.ndarray:
        """Spread estimates ``Inf(v)`` for every vertex, as an array of length n."""
        counts = np.array(
            [len(members) for members in self._membership], dtype=np.float64
        )
        return self._graph.num_vertices * counts / self._pool_size

    def top_vertices(self, count: int = 3) -> list[tuple[int, float]]:
        """The ``count`` most influential single vertices (Table 4 rows)."""
        require_positive_int(count, "count")
        spreads = self.single_vertex_spreads()
        order = np.argsort(-spreads, kind="stable")[:count]
        return [(int(v), float(spreads[v])) for v in order]
