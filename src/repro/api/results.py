"""Structured experiment results: one machine-readable object per spec kind.

Every :func:`repro.api.runner.run` call returns an :class:`ExperimentResult`
subclass that carries

* the originating spec (so a result file is self-describing and re-runnable),
* the underlying library dataclasses (``GreedyResult``, ``TrialSet``,
  ``SweepResult``, ``TraversalCostRow`` — nothing is lost over the imperative
  API), and
* three renderings: ``to_dict()`` (plain JSON-compatible data),
  ``to_json()``, and ``to_text()`` — the latter byte-identical to what the
  pre-spec CLI printed, which is how the CLI's default text mode stays
  pinned.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from ..estimation.oracle import SpreadEstimate
from ..algorithms.framework import GreedyResult
from ..experiments.reporting import format_multi_series, format_table
from ..experiments.sweeps import SweepResult as SweepData
from ..experiments.traversal import TraversalCostRow
from ..experiments.trials import TrialSet
from .specs import MaximizeSpec, StatsSpec, SweepSpec, TraversalSpec, TrialsSpec


def _jsonable(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays and tuples to JSON types."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [_jsonable(item) for item in value.tolist()]
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


class ExperimentResult:
    """Base class of all structured experiment results.

    Results optionally carry the run's :class:`~repro.obs.Telemetry` (set by
    :func:`repro.api.runner.run` when one is attached to the spec's context);
    it appears as a ``"telemetry"`` block in :meth:`to_dict`.  Without one
    the dict is exactly the pre-telemetry payload, which is how the golden
    and jobs-bit-identity tests stay byte-identical.
    """

    kind: str = "abstract"

    #: Overridden by each frozen-dataclass subclass's ``telemetry`` field.
    telemetry: Any = None

    def payload(self) -> dict[str, Any]:
        """The kind-specific result data (without the spec envelope)."""
        raise NotImplementedError

    def to_text(self) -> str:
        """Legacy plain-text rendering (what the CLI prints in text mode)."""
        raise NotImplementedError

    def with_telemetry(self, telemetry: Any) -> "ExperimentResult":
        """A copy of this result carrying the run's telemetry."""
        return dataclasses.replace(self, telemetry=telemetry)

    def to_dict(self) -> dict[str, Any]:
        """Self-describing dict: kind, the originating spec, and the data."""
        out = _jsonable(
            {"kind": self.kind, "spec": self.spec.to_dict(), **self.payload()}
        )
        if self.telemetry is not None and getattr(self.telemetry, "enabled", False):
            out["telemetry"] = _jsonable(self.telemetry.to_dict())
        return out

    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialize :meth:`to_dict` as JSON."""
        return json.dumps(self.to_dict(), indent=indent)


@dataclass(frozen=True)
class StatsResult(ExperimentResult):
    """Network-statistics rows (Table 3 methodology)."""

    spec: StatsSpec
    rows: tuple[dict[str, Any], ...]
    telemetry: Any = None

    kind = "stats"

    def payload(self) -> dict[str, Any]:
        return {"rows": [dict(row) for row in self.rows]}

    def to_text(self) -> str:
        return format_table(list(self.rows), title="Network statistics")


@dataclass(frozen=True)
class MaximizeResult(ExperimentResult):
    """One greedy run plus its oracle score."""

    spec: MaximizeSpec
    graph_name: str
    greedy: GreedyResult
    influence: SpreadEstimate
    telemetry: Any = None

    kind = "maximize"

    def payload(self) -> dict[str, Any]:
        return {
            "graph": self.graph_name,
            "approach": self.greedy.approach,
            "num_samples": self.greedy.num_samples,
            "k": self.greedy.k,
            "seed_set": list(self.greedy.seed_set),
            "selection_order": list(self.greedy.seeds),
            "estimates": list(self.greedy.estimates),
            "influence": self.influence.value,
            "influence_confidence_radius": self.influence.confidence_radius,
            "cost": self.greedy.cost.as_dict(),
        }

    def to_text(self) -> str:
        cost = self.greedy.cost
        rows = [
            {
                "approach": self.greedy.approach,
                "samples": self.greedy.num_samples,
                "k": self.greedy.k,
                "seeds": self.greedy.seed_set,
                "influence": round(self.influence.value, 3),
                "influence_99ci": f"+-{self.influence.confidence_radius:.3f}",
                "traversal_vertices": cost.traversal.vertices,
                "traversal_edges": cost.traversal.edges,
                "stored_vertices": cost.sample_size.vertices,
                "stored_edges": cost.sample_size.edges,
            }
        ]
        return format_table(rows, title=f"Greedy result on {self.graph_name}")


def _trial_rows(trial_set: TrialSet) -> list[dict[str, Any]]:
    return [
        {
            "trial_seed": outcome.trial_seed,
            "seed_set": list(outcome.seed_set),
            "influence": outcome.influence,
            "cost": outcome.cost.as_dict(),
        }
        for outcome in trial_set.outcomes
    ]


@dataclass(frozen=True)
class TrialsResult(ExperimentResult):
    """Repeated-trial seed-set and influence distributions."""

    spec: TrialsSpec
    graph_name: str
    trial_set: TrialSet
    telemetry: Any = None

    kind = "trials"

    def payload(self) -> dict[str, Any]:
        distribution = self.trial_set.seed_set_distribution()
        return {
            "graph": self.graph_name,
            "approach": self.trial_set.approach,
            "num_samples": self.trial_set.num_samples,
            "k": self.trial_set.k,
            "num_trials": self.trial_set.num_trials,
            "entropy": distribution.entropy(),
            "num_distinct_seed_sets": distribution.support_size,
            "mean_influence": self.trial_set.mean_influence,
            "mean_cost": self.trial_set.mean_cost(),
            "trials": _trial_rows(self.trial_set),
        }

    def to_text(self) -> str:
        rows = [
            {
                "trial": index,
                "seed_set": outcome.seed_set,
                "influence": round(outcome.influence, 3),
            }
            for index, outcome in enumerate(self.trial_set.outcomes)
        ]
        title = (
            f"{self.trial_set.approach} trials on {self.graph_name} "
            f"(samples={self.trial_set.num_samples}, k={self.trial_set.k}, "
            f"T={self.trial_set.num_trials})"
        )
        return format_table(rows, title=title)


@dataclass(frozen=True)
class SweepResult(ExperimentResult):
    """Sample-number sweep: per-grid-point entropy and influence statistics.

    Named after the underlying :class:`repro.experiments.sweeps.SweepResult`
    it wraps (exposed here as :attr:`sweep`); import it as
    ``repro.api.SweepResult`` to disambiguate.
    """

    spec: SweepSpec
    graph_name: str
    sweep: SweepData
    telemetry: Any = None

    kind = "sweep"

    def payload(self) -> dict[str, Any]:
        return {
            "graph": self.graph_name,
            "approach": self.spec.approach,
            "k": self.sweep.k,
            "num_trials": self.spec.num_trials,
            "sample_numbers": list(self.sweep.sample_numbers),
            "entropy": self.sweep.entropies(),
            "mean_influence": self.sweep.mean_influences(),
            "influence_distributions": {
                s: dist.as_row()
                for s, dist in self.sweep.influence_distributions().items()
            },
            "mean_sample_sizes": self.sweep.mean_sample_sizes(),
            "trials": {
                s: _trial_rows(trial_set)
                for s, trial_set in sorted(self.sweep.trial_sets.items())
            },
        }

    def to_text(self) -> str:
        return format_multi_series(
            {
                "entropy": self.sweep.entropies(),
                "mean_influence": self.sweep.mean_influences(),
            },
            title=(
                f"{self.spec.approach} sweep on {self.graph_name} "
                f"(k={self.sweep.k}, T={self.spec.num_trials})"
            ),
        )


@dataclass(frozen=True)
class TraversalResult(ExperimentResult):
    """Per-sample traversal-cost rows (Table 8 methodology)."""

    spec: TraversalSpec
    graph_name: str
    rows: tuple[TraversalCostRow, ...]
    telemetry: Any = None

    kind = "traversal"

    def payload(self) -> dict[str, Any]:
        return {
            "graph": self.graph_name,
            "k": self.spec.k,
            "num_samples": self.spec.num_samples,
            "num_repetitions": self.spec.repetitions,
            "rows": [
                {
                    "approach": row.approach,
                    "vertex_cost": row.vertex_cost,
                    "edge_cost": row.edge_cost,
                    "sample_vertices": row.sample_vertices,
                    "sample_edges": row.sample_edges,
                }
                for row in self.rows
            ],
        }

    def to_text(self) -> str:
        return format_table(
            [row.as_row() for row in self.rows],
            title=(
                f"Per-sample traversal cost on {self.graph_name} "
                f"(k={self.spec.k}, sample number {self.spec.num_samples})"
            ),
        )


def result_rows(results: Sequence[ExperimentResult]) -> list[dict[str, Any]]:
    """Flatten several results' payloads (convenience for batch reports)."""
    return [result.to_dict() for result in results]
