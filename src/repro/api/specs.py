"""Typed, serializable experiment specs: a whole experiment as one document.

Every spec is a frozen dataclass with eager field validation (bad dataset /
approach / probability / diffusion-model names fail at construction time),
``to_dict()`` emitting a compact JSON-compatible dict (defaults omitted), and
``from_dict()`` that rejects unknown keys naming the offending key — so a
typo in a config file is a hard error, never a silently ignored setting.

Composition mirrors the paper's methodology:

* :class:`GraphSpec` — the influence instance: a registry ``dataset``, an
  ``edge_list`` file, or a synthetic ``generator``, plus the edge-probability
  scheme and (for edge lists) the duplicate-arc policy.
* :class:`~repro.context.RunContext` — seed / jobs / executor / diffusion
  model, shared by every experiment kind.
* :class:`EstimatorSpec` — approach name + sample number, resolved through
  :func:`repro.experiments.factories.estimator_factory`.
* The experiment specs (:class:`StatsSpec`, :class:`MaximizeSpec`,
  :class:`TrialsSpec`, :class:`SweepSpec`, :class:`TraversalSpec`) — one per
  workflow, each tagged with a ``kind`` so :func:`spec_from_dict` can
  dispatch a raw JSON document.

Determinism contract: a spec plus its context seed fully pins the run —
:func:`repro.api.runner.run` on equal specs returns identical results, equal
to what the legacy keyword-argument entry points produce for the same
parameters (see ``docs/DESIGN.md``).
"""

from __future__ import annotations

import dataclasses
import inspect
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, ClassVar, Mapping

from ..context import RunContext, _check_unknown_keys, _require_mapping
from ..exceptions import SpecValidationError
from ..graphs import generators
from ..graphs.datasets import list_datasets
from ..graphs.influence_graph import InfluenceGraph
from ..graphs.probability import (
    PROBABILITY_MODELS,
    assign_probabilities,
    is_valid_probability_model,
)

#: Synthetic generators selectable from :class:`GraphSpec` (name -> builder).
GRAPH_GENERATORS: dict[str, Callable[..., InfluenceGraph]] = {
    name: getattr(generators, name)
    for name in (
        "erdos_renyi",
        "barabasi_albert",
        "watts_strogatz",
        "powerlaw_cluster",
        "directed_scale_free",
        "core_whisker",
        "star",
        "path",
        "complete",
    )
}

#: Accepted duplicate-arc policies (mirrors ``repro.graphs.io.read_edge_list``).
DUPLICATE_POLICIES: tuple[str, ...] = ("error", "first", "last", "allow")


class _SpecBase:
    """Shared ``to_dict``/``from_dict`` machinery for all spec dataclasses.

    Subclasses declare ``_nested`` (field name -> spec class with its own
    ``from_dict``) and ``_tuple_fields`` (fields whose JSON form is a list).
    ``to_dict`` omits fields equal to their default so spec documents stay
    minimal; ``from_dict`` fills the omitted defaults back in, making
    ``from_dict(to_dict(spec)) == spec`` for every valid spec.
    """

    kind: ClassVar[str | None] = None
    _nested: ClassVar[dict[str, type]] = {}
    _tuple_fields: ClassVar[frozenset[str]] = frozenset()

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a JSON-compatible dict (defaults omitted)."""
        out: dict[str, Any] = {}
        if self.kind is not None:
            out["kind"] = self.kind
        for spec_field in dataclasses.fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.default is not dataclasses.MISSING:
                default = spec_field.default
            elif spec_field.default_factory is not dataclasses.MISSING:
                default = spec_field.default_factory()
            else:
                default = dataclasses.MISSING
            if value == default:
                continue
            if hasattr(value, "to_dict") and spec_field.name in self._nested:
                serialized: Any = value.to_dict()
                # A nested spec serializing to {} is all-default (it may still
                # differ from the default object via runtime-only state such
                # as an attached telemetry); omit it to keep documents
                # minimal and the from_dict round-trip exact.
                if serialized == {}:
                    continue
            elif isinstance(value, tuple):
                serialized = list(value)
            else:
                serialized = value
            out[spec_field.name] = serialized
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> Any:
        """Deserialize; unknown keys are rejected with the offending key named."""
        _require_mapping(data, cls.__name__)
        payload = dict(data)
        if cls.kind is not None and "kind" in payload:
            declared = payload.pop("kind")
            if declared != cls.kind:
                raise SpecValidationError(
                    f"{cls.__name__} expects kind={cls.kind!r}, got {declared!r}"
                )
        allowed = {spec_field.name for spec_field in dataclasses.fields(cls)}
        _check_unknown_keys(payload, allowed, cls.__name__)
        kwargs: dict[str, Any] = {}
        for name, value in payload.items():
            if name in cls._nested and isinstance(value, Mapping):
                value = cls._nested[name].from_dict(value)
            elif name in cls._tuple_fields and isinstance(value, list):
                value = tuple(value)
            kwargs[name] = value
        return cls(**kwargs)

    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> Any:
        """Deserialize from a JSON string."""
        return cls.from_dict(json.loads(text))


# --------------------------------------------------------------------------- #
# building blocks
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class GraphSpec(_SpecBase):
    """Declarative influence-graph instance.

    Exactly one source must be set:

    * ``dataset`` — a registry name (``scale`` and ``seed`` apply);
    * ``edge_list`` — path to a text edge list (``directed`` and the
      ``on_duplicate`` policy apply);
    * ``generator`` — a :data:`GRAPH_GENERATORS` name with
      ``generator_params`` passed through verbatim (``seed`` is injected for
      generators that accept it and do not receive one explicitly).

    ``probability`` optionally assigns an edge-probability scheme afterwards
    (any :data:`~repro.graphs.probability.PROBABILITY_MODELS` name or
    ``uc<value>``; ``probability_seed`` feeds the stochastic ``trivalency``
    scheme).

    Fields that do not apply to the chosen source are rejected when set to a
    non-default value (``scale``/``seed`` for edge lists, ``directed``/
    ``on_duplicate`` for datasets and generators, ...) — a setting in the
    document either takes effect or is an error, never silently ignored.

    ``generator_params`` accepts a mapping but is stored as a sorted tuple
    of ``(key, value)`` pairs, keeping every spec hashable (usable as a
    dict key for result caches).
    """

    dataset: str | None = None
    edge_list: str | None = None
    generator: str | None = None
    generator_params: Any = ()
    scale: float = 1.0
    seed: int = 0
    directed: bool = True
    on_duplicate: str = "error"
    probability: str | None = None
    probability_seed: int = 0

    def __post_init__(self) -> None:
        sources = [
            name
            for name, value in (
                ("dataset", self.dataset),
                ("edge_list", self.edge_list),
                ("generator", self.generator),
            )
            if value is not None
        ]
        if len(sources) != 1:
            raise SpecValidationError(
                "GraphSpec requires exactly one of dataset/edge_list/generator, "
                f"got {sources or 'none'}"
            )
        source = sources[0]
        if self.dataset is not None and self.dataset not in list_datasets():
            raise SpecValidationError(
                f"unknown dataset {self.dataset!r}; "
                f"available: {', '.join(list_datasets())}"
            )
        if self.generator is not None and self.generator not in GRAPH_GENERATORS:
            raise SpecValidationError(
                f"unknown generator {self.generator!r}; "
                f"available: {', '.join(sorted(GRAPH_GENERATORS))}"
            )
        params = self.generator_params
        if isinstance(params, Mapping):
            params = tuple(sorted(params.items()))
        elif isinstance(params, (list, tuple)):
            params = tuple(
                tuple(pair) if isinstance(pair, list) else pair for pair in params
            )
        else:
            raise SpecValidationError(
                "GraphSpec.generator_params must be a mapping, "
                f"got {type(params).__name__}"
            )
        for pair in params:
            if not (isinstance(pair, tuple) and len(pair) == 2 and isinstance(pair[0], str)):
                raise SpecValidationError(
                    "GraphSpec.generator_params entries must map string "
                    f"parameter names to values, got {pair!r}"
                )
        object.__setattr__(self, "generator_params", params)
        if self.on_duplicate not in DUPLICATE_POLICIES:
            raise SpecValidationError(
                f"unknown on_duplicate policy {self.on_duplicate!r}; "
                f"expected one of: {', '.join(DUPLICATE_POLICIES)}"
            )
        if not isinstance(self.scale, (int, float)) or self.scale <= 0:
            raise SpecValidationError(
                f"GraphSpec.scale must be a positive number, got {self.scale!r}"
            )
        # Reject non-default settings that the chosen source would ignore:
        # a field in the document either takes effect or is an error.
        inapplicable = {
            "dataset": (("generator_params", ()), ("directed", True), ("on_duplicate", "error")),
            "edge_list": (("generator_params", ()), ("scale", 1.0), ("seed", 0)),
            "generator": (("scale", 1.0), ("directed", True), ("on_duplicate", "error")),
        }
        for field_name, default in inapplicable[source]:
            if getattr(self, field_name) != default:
                raise SpecValidationError(
                    f"GraphSpec.{field_name} does not apply to a {source} "
                    "source and would be ignored; remove it"
                )
        if self.probability is not None and not is_valid_probability_model(
            self.probability
        ):
            raise SpecValidationError(
                f"unknown probability model {self.probability!r}; expected one "
                f"of {', '.join(PROBABILITY_MODELS)} or uc<value>"
            )

    def resolve(self) -> InfluenceGraph:
        """Build the graph (and assign probabilities) this spec describes."""
        if self.dataset is not None:
            from ..graphs.datasets import load_dataset

            graph = load_dataset(self.dataset, scale=float(self.scale), seed=self.seed)
        elif self.edge_list is not None:
            from ..graphs.io import read_edge_list

            graph = read_edge_list(
                self.edge_list, directed=self.directed, on_duplicate=self.on_duplicate
            )
        else:
            builder = GRAPH_GENERATORS[self.generator]
            params = dict(self.generator_params)
            accepts_seed = "seed" in inspect.signature(builder).parameters
            if accepts_seed and "seed" not in params:
                params["seed"] = self.seed
            graph = builder(**params)
        if self.probability is not None:
            graph = assign_probabilities(
                graph, self.probability, seed=self.probability_seed
            )
        return graph

    def to_dict(self) -> dict[str, Any]:
        """Serialize (``generator_params`` re-emitted as a JSON object)."""
        out = super().to_dict()
        if "generator_params" in out:
            out["generator_params"] = dict(self.generator_params)
        return out


@dataclass(frozen=True)
class EstimatorSpec(_SpecBase):
    """Approach name plus its sample number (beta, tau, or theta).

    ``batch_mode`` opts the approaches with a bit-parallel fast path
    (Oneshot, RIS) into the 64-worlds-per-word kernels
    (:mod:`repro.diffusion.bitparallel`); ``None`` (the default) defers to
    ``context.batch_mode`` and then the ``REPRO_BITPARALLEL`` environment
    variable, keeping the golden scalar stream.
    """

    approach: str = "ris"
    num_samples: int = 1024
    batch_mode: str | None = None

    def __post_init__(self) -> None:
        from ..experiments.factories import available_approaches

        if self.approach not in available_approaches():
            raise SpecValidationError(
                f"unknown approach {self.approach!r}; "
                f"available: {', '.join(available_approaches())}"
            )
        if not isinstance(self.num_samples, int) or isinstance(self.num_samples, bool) \
                or self.num_samples < 1:
            raise SpecValidationError(
                f"EstimatorSpec.num_samples must be a positive int, "
                f"got {self.num_samples!r}"
            )
        if self.batch_mode is not None:
            from ..diffusion.bitparallel import require_batch_mode
            from ..exceptions import ReproError

            try:
                require_batch_mode(self.batch_mode)
            except ReproError as error:
                raise SpecValidationError(str(error)) from None


def _require_positive(value: Any, name: str) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise SpecValidationError(f"{name} must be a positive int, got {value!r}")


# --------------------------------------------------------------------------- #
# experiment specs
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class StatsSpec(_SpecBase):
    """Network-statistics experiment (the CLI's ``stats``; Table 3)."""

    kind: ClassVar[str] = "stats"
    _nested: ClassVar[dict[str, type]] = {"context": RunContext}

    dataset: str = "all"
    scale: float = 1.0
    context: RunContext = field(default_factory=RunContext)

    def __post_init__(self) -> None:
        if self.dataset != "all" and self.dataset not in list_datasets():
            raise SpecValidationError(
                f"unknown dataset {self.dataset!r}; expected 'all' or one of: "
                f"{', '.join(list_datasets())}"
            )
        if not isinstance(self.scale, (int, float)) or self.scale <= 0:
            raise SpecValidationError(
                f"StatsSpec.scale must be a positive number, got {self.scale!r}"
            )


@dataclass(frozen=True)
class MaximizeSpec(_SpecBase):
    """One greedy seed-selection run scored by the shared RR-pool oracle."""

    kind: ClassVar[str] = "maximize"
    _nested: ClassVar[dict[str, type]] = {
        "graph": GraphSpec,
        "estimator": EstimatorSpec,
        "context": RunContext,
    }

    graph: GraphSpec = field(default_factory=lambda: GraphSpec(dataset="karate"))
    estimator: EstimatorSpec = field(default_factory=EstimatorSpec)
    k: int = 4
    pool_size: int = 20_000
    context: RunContext = field(default_factory=RunContext)

    def __post_init__(self) -> None:
        _require_positive(self.k, "MaximizeSpec.k")
        _require_positive(self.pool_size, "MaximizeSpec.pool_size")


@dataclass(frozen=True)
class TrialsSpec(_SpecBase):
    """Repeated independent trials of one configuration (Section 4)."""

    kind: ClassVar[str] = "trials"
    _nested: ClassVar[dict[str, type]] = {
        "graph": GraphSpec,
        "estimator": EstimatorSpec,
        "context": RunContext,
    }

    graph: GraphSpec = field(default_factory=lambda: GraphSpec(dataset="karate"))
    estimator: EstimatorSpec = field(default_factory=EstimatorSpec)
    k: int = 1
    num_trials: int = 20
    pool_size: int = 20_000
    context: RunContext = field(default_factory=RunContext)

    def __post_init__(self) -> None:
        _require_positive(self.k, "TrialsSpec.k")
        _require_positive(self.num_trials, "TrialsSpec.num_trials")
        _require_positive(self.pool_size, "TrialsSpec.pool_size")


@dataclass(frozen=True)
class SweepSpec(_SpecBase):
    """Sample-number sweep of one approach (Figures 1 / 4 methodology).

    The grid is either the power-of-two span ``2^min_exponent ..
    2^max_exponent`` (the paper's axes) or an explicit ``sample_numbers``
    list; setting both is rejected.
    """

    kind: ClassVar[str] = "sweep"
    _nested: ClassVar[dict[str, type]] = {"graph": GraphSpec, "context": RunContext}
    _tuple_fields: ClassVar[frozenset[str]] = frozenset({"sample_numbers"})

    graph: GraphSpec = field(default_factory=lambda: GraphSpec(dataset="karate"))
    approach: str = "ris"
    k: int = 1
    max_exponent: int | None = None
    min_exponent: int = 0
    sample_numbers: tuple[int, ...] | None = None
    num_trials: int = 20
    pool_size: int = 20_000
    context: RunContext = field(default_factory=RunContext)

    def __post_init__(self) -> None:
        from ..experiments.factories import available_approaches

        if self.approach not in available_approaches():
            raise SpecValidationError(
                f"unknown approach {self.approach!r}; "
                f"available: {', '.join(available_approaches())}"
            )
        _require_positive(self.k, "SweepSpec.k")
        _require_positive(self.num_trials, "SweepSpec.num_trials")
        _require_positive(self.pool_size, "SweepSpec.pool_size")
        if self.sample_numbers is not None:
            if self.max_exponent is not None:
                raise SpecValidationError(
                    "SweepSpec accepts either sample_numbers or "
                    "max_exponent/min_exponent, not both"
                )
            if not self.sample_numbers:
                raise SpecValidationError("SweepSpec.sample_numbers must not be empty")
            for value in self.sample_numbers:
                _require_positive(value, "SweepSpec.sample_numbers entries")
        else:
            if self.max_exponent is None:
                raise SpecValidationError(
                    "SweepSpec requires max_exponent or sample_numbers"
                )
            if self.min_exponent < 0 or self.max_exponent < self.min_exponent:
                raise SpecValidationError(
                    f"SweepSpec exponents must satisfy 0 <= min_exponent "
                    f"({self.min_exponent}) <= max_exponent ({self.max_exponent})"
                )

    def grid(self) -> tuple[int, ...]:
        """The swept sample numbers in increasing order."""
        if self.sample_numbers is not None:
            return tuple(sorted(set(int(s) for s in self.sample_numbers)))
        from ..experiments.sweeps import powers_of_two

        return powers_of_two(self.max_exponent, min_exponent=self.min_exponent)


@dataclass(frozen=True)
class TraversalSpec(_SpecBase):
    """Per-sample traversal-cost measurement (Table 8 methodology)."""

    kind: ClassVar[str] = "traversal"
    _nested: ClassVar[dict[str, type]] = {"graph": GraphSpec, "context": RunContext}
    _tuple_fields: ClassVar[frozenset[str]] = frozenset({"approaches"})

    graph: GraphSpec = field(default_factory=lambda: GraphSpec(dataset="karate"))
    approaches: tuple[str, ...] = ("oneshot", "snapshot", "ris")
    k: int = 1
    num_samples: int = 1
    repetitions: int = 3
    context: RunContext = field(default_factory=RunContext)

    def __post_init__(self) -> None:
        from ..experiments.factories import available_approaches

        if not self.approaches:
            raise SpecValidationError("TraversalSpec.approaches must not be empty")
        for approach in self.approaches:
            if approach not in available_approaches():
                raise SpecValidationError(
                    f"unknown approach {approach!r}; "
                    f"available: {', '.join(available_approaches())}"
                )
        _require_positive(self.k, "TraversalSpec.k")
        _require_positive(self.num_samples, "TraversalSpec.num_samples")
        _require_positive(self.repetitions, "TraversalSpec.repetitions")


#: Experiment spec classes by their ``kind`` tag.
SPEC_KINDS: dict[str, type[_SpecBase]] = {
    spec.kind: spec
    for spec in (StatsSpec, MaximizeSpec, TrialsSpec, SweepSpec, TraversalSpec)
}

#: Union of all experiment spec types (for annotations and isinstance checks).
ExperimentSpec = StatsSpec | MaximizeSpec | TrialsSpec | SweepSpec | TraversalSpec


def spec_from_dict(data: Mapping[str, Any]) -> ExperimentSpec:
    """Deserialize any experiment spec, dispatching on its ``kind`` tag."""
    _require_mapping(data, "experiment spec")
    try:
        kind = data["kind"]
    except KeyError:
        raise SpecValidationError(
            f"experiment spec requires a 'kind' key; "
            f"expected one of: {', '.join(sorted(SPEC_KINDS))}"
        ) from None
    try:
        spec_class = SPEC_KINDS[kind]
    except KeyError:
        raise SpecValidationError(
            f"unknown experiment kind {kind!r}; "
            f"expected one of: {', '.join(sorted(SPEC_KINDS))}"
        ) from None
    return spec_class.from_dict(data)


def load_spec(path: "str | Path") -> ExperimentSpec:
    """Read and deserialize an experiment spec from a JSON file."""
    text = Path(path).read_text(encoding="utf-8")
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise SpecValidationError(f"{path} is not valid JSON: {error}") from None
    return spec_from_dict(data)
