"""The one entry point: ``repro.run(spec)`` dispatches any experiment spec.

Each ``_run_<kind>`` function reproduces, step for step, what the
corresponding CLI subcommand (and therefore the historical imperative
recipe) does — same construction order, same derived seeds (oracle seed is
``context.seed + 1``, matching ``--run-seed``), same estimator-factory
bindings — so running a spec and running the legacy code path yield
identical numbers.  That equivalence is pinned by the golden CLI tests in
``tests/api/``.
"""

from __future__ import annotations

from typing import Any

from ..diffusion.models import DiffusionModel, resolve_model
from ..estimation.oracle import RRPoolOracle
from ..exceptions import SpecValidationError
from ..experiments.factories import estimator_factory
from ..experiments.sweeps import sweep_sample_numbers
from ..experiments.traversal import traversal_cost_table
from ..experiments.trials import run_trials
from ..algorithms.framework import greedy_maximize
from ..graphs.datasets import PAPER_DATASETS, load_dataset
from ..graphs.influence_graph import InfluenceGraph
from ..graphs.statistics import network_statistics
from ..obs import as_telemetry
from ..runtime.engine import run_tasks
from .results import (
    ExperimentResult,
    MaximizeResult,
    StatsResult,
    SweepResult,
    TraversalResult,
    TrialsResult,
)
from .specs import (
    ExperimentSpec,
    MaximizeSpec,
    StatsSpec,
    SweepSpec,
    TraversalSpec,
    TrialsSpec,
)


def _resolve_instance(spec: Any) -> tuple[InfluenceGraph, DiffusionModel]:
    """Build the (graph, diffusion model) instance and validate feasibility."""
    tel = as_telemetry(spec.context.telemetry)
    with tel.span("graph.build"):
        graph = spec.graph.resolve()
    diffusion = resolve_model(spec.context.model)
    # Fail fast with a clear error (e.g. LT incoming weights exceeding one)
    # before spending time on pools, snapshots, or trials.
    diffusion.validate(graph)
    if tel.enabled:
        tel.gauge("graph.vertices", graph.num_vertices)
        tel.gauge("graph.edges", graph.num_edges)
    return graph, diffusion


def _stats_row_worker(task: tuple[str, float]) -> dict[str, object]:
    """Compute one dataset's statistics row (picklable worker)."""
    name, scale = task
    graph = load_dataset(name, scale=scale)
    return network_statistics(graph, max_distance_sources=100).as_row()


def _run_stats(spec: StatsSpec) -> StatsResult:
    names = PAPER_DATASETS if spec.dataset == "all" else (spec.dataset,)
    rows = run_tasks(
        _stats_row_worker,
        [(name, float(spec.scale)) for name in names],
        jobs=spec.context.jobs,
        executor=spec.context.executor,
        telemetry=spec.context.telemetry,
    )
    return StatsResult(spec=spec, rows=tuple(rows))


def _run_maximize(spec: MaximizeSpec) -> MaximizeResult:
    graph, diffusion = _resolve_instance(spec)
    context = spec.context
    tel = as_telemetry(context.telemetry)
    estimator = estimator_factory(
        spec.estimator.approach,
        jobs=context.jobs,
        executor=context.executor,
        model=diffusion,
        # The estimator spec's own batch_mode wins over the context's.
        batch_mode=spec.estimator.batch_mode or context.batch_mode,
    )(spec.estimator.num_samples)
    greedy = greedy_maximize(
        graph, spec.k, estimator, seed=context.seed, context=context
    )
    tel.record_cost(greedy.cost)
    oracle = RRPoolOracle(
        graph,
        pool_size=spec.pool_size,
        seed=context.seed + 1,
        model=diffusion,
        jobs=context.jobs,
        executor=context.executor,
        context=context,
    )
    with tel.span("oracle.score"):
        estimate = oracle.spread_with_confidence(greedy.seed_set)
    return MaximizeResult(
        spec=spec, graph_name=graph.name, greedy=greedy, influence=estimate
    )


def _run_trials(spec: TrialsSpec) -> TrialsResult:
    graph, diffusion = _resolve_instance(spec)
    context = spec.context
    oracle = RRPoolOracle(
        graph,
        pool_size=spec.pool_size,
        seed=context.seed + 1,
        model=diffusion,
        jobs=context.jobs,
        executor=context.executor,
        context=context,
    )
    trial_set = run_trials(
        graph,
        spec.k,
        estimator_factory(
            spec.estimator.approach,
            model=diffusion,
            batch_mode=spec.estimator.batch_mode or context.batch_mode,
        ),
        spec.estimator.num_samples,
        spec.num_trials,
        oracle=oracle,
        experiment_seed=context.seed,
        model=diffusion,
        jobs=context.jobs,
        executor=context.executor,
        telemetry=context.telemetry,
    )
    return TrialsResult(spec=spec, graph_name=graph.name, trial_set=trial_set)


def _run_sweep(spec: SweepSpec) -> SweepResult:
    graph, diffusion = _resolve_instance(spec)
    context = spec.context
    oracle = RRPoolOracle(
        graph,
        pool_size=spec.pool_size,
        seed=context.seed + 1,
        model=diffusion,
        jobs=context.jobs,
        executor=context.executor,
        context=context,
    )
    # Parallelism is applied at the trial level (the coarsest grain); the
    # estimator factory stays serial so worker processes do not nest pools.
    sweep = sweep_sample_numbers(
        graph,
        spec.k,
        estimator_factory(spec.approach, model=diffusion, batch_mode=context.batch_mode),
        spec.grid(),
        num_trials=spec.num_trials,
        oracle=oracle,
        experiment_seed=context.seed,
        model=diffusion,
        jobs=context.jobs,
        executor=context.executor,
        telemetry=context.telemetry,
    )
    return SweepResult(spec=spec, graph_name=graph.name, sweep=sweep)


def _run_traversal(spec: TraversalSpec) -> TraversalResult:
    graph, diffusion = _resolve_instance(spec)
    context = spec.context
    rows = traversal_cost_table(
        graph,
        {
            name: estimator_factory(
                name, model=diffusion, batch_mode=context.batch_mode
            )
            for name in spec.approaches
        },
        k=spec.k,
        num_samples=spec.num_samples,
        num_repetitions=spec.repetitions,
        experiment_seed=context.seed,
        model=diffusion,
        jobs=context.jobs,
        executor=context.executor,
        telemetry=context.telemetry,
    )
    return TraversalResult(spec=spec, graph_name=graph.name, rows=tuple(rows))


_RUNNERS = {
    StatsSpec: _run_stats,
    MaximizeSpec: _run_maximize,
    TrialsSpec: _run_trials,
    SweepSpec: _run_sweep,
    TraversalSpec: _run_traversal,
}


def run(spec: ExperimentSpec) -> ExperimentResult:
    """Execute any experiment spec and return its structured result.

    The single public dispatcher of the declarative API: give it a
    :class:`StatsSpec`, :class:`MaximizeSpec`, :class:`TrialsSpec`,
    :class:`SweepSpec`, or :class:`TraversalSpec` (hand-built, or from
    :func:`repro.api.specs.spec_from_dict` /
    :func:`repro.api.specs.load_spec`) and it resolves the graph, validates
    the instance, runs the corresponding engine, and returns an
    :class:`~repro.api.results.ExperimentResult` with ``to_dict`` /
    ``to_json`` / ``to_text`` renderings.

    Determinism: equal specs produce identical results, equal to the legacy
    keyword-argument entry points with the same parameters.

    Observability: attach a :class:`~repro.obs.Telemetry` to the spec's
    context (``RunContext(telemetry=...)``) and the whole run is recorded —
    spans for every phase, counters reproducing the cost accounting — and
    the result's ``to_dict``/``to_json`` gain a ``"telemetry"`` block.  With
    no telemetry attached (the default) nothing is recorded and the result
    payload is byte-identical to earlier releases.
    """
    try:
        runner = _RUNNERS[type(spec)]
    except KeyError:
        raise SpecValidationError(
            f"run() expects an experiment spec, got {type(spec).__name__}; "
            f"supported: {', '.join(sorted(s.__name__ for s in _RUNNERS))}"
        ) from None
    tel = as_telemetry(spec.context.telemetry)
    if not tel.enabled:
        return runner(spec)
    tel.check_jobs(spec.context.jobs)
    with tel.span(f"run.{spec.kind}"):
        result = runner(spec)
    return result.with_telemetry(tel)
