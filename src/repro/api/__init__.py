"""Declarative experiment API: typed specs, one ``run()``, structured results.

The three layers:

* :mod:`repro.api.specs` — serializable experiment documents
  (:class:`GraphSpec`, :class:`EstimatorSpec`, the per-kind experiment specs,
  and :func:`spec_from_dict` / :func:`load_spec` for JSON round-tripping);
* :mod:`repro.api.runner` — the single :func:`run` dispatcher onto the
  existing engines;
* :mod:`repro.api.results` — :class:`ExperimentResult` objects carrying
  ``to_dict()`` / ``to_json()`` / ``to_text()``.

Quickstart::

    import repro

    spec = repro.MaximizeSpec(
        graph=repro.GraphSpec(dataset="karate", probability="uc0.1"),
        estimator=repro.EstimatorSpec(approach="ris", num_samples=1024),
        k=4,
        context=repro.RunContext(seed=0),
    )
    result = repro.run(spec)
    print(result.to_text())          # the familiar table
    open("out.json", "w").write(result.to_json())  # machine-readable
"""

from ..context import ResolvedContext, RunContext, resolve_context
from .results import (
    ExperimentResult,
    MaximizeResult,
    StatsResult,
    SweepResult,
    TraversalResult,
    TrialsResult,
)
from .runner import run
from .specs import (
    DUPLICATE_POLICIES,
    GRAPH_GENERATORS,
    SPEC_KINDS,
    EstimatorSpec,
    ExperimentSpec,
    GraphSpec,
    MaximizeSpec,
    SpecValidationError,
    StatsSpec,
    SweepSpec,
    TraversalSpec,
    TrialsSpec,
    load_spec,
    spec_from_dict,
)

__all__ = [
    "run",
    "RunContext",
    "ResolvedContext",
    "resolve_context",
    # specs
    "GraphSpec",
    "EstimatorSpec",
    "StatsSpec",
    "MaximizeSpec",
    "TrialsSpec",
    "SweepSpec",
    "TraversalSpec",
    "ExperimentSpec",
    "SPEC_KINDS",
    "GRAPH_GENERATORS",
    "DUPLICATE_POLICIES",
    "spec_from_dict",
    "load_spec",
    "SpecValidationError",
    # results
    "ExperimentResult",
    "StatsResult",
    "MaximizeResult",
    "TrialsResult",
    "SweepResult",
    "TraversalResult",
]
