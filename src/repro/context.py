"""The run context: one object for the four cross-cutting execution knobs.

Every layer of the library is parameterised by the same four values — the
PRNG ``seed``, the worker count ``jobs``, an optional caller-owned
``executor``, and the diffusion ``model``.  Historically each entry point
accepted them as separate keyword arguments; :class:`RunContext` collapses
them into a single immutable object that every entry point now also accepts
as ``context=``, and that the declarative spec layer
(:mod:`repro.api.specs`) serializes as part of an experiment document.

Merge rule (implemented by :func:`resolve_context` and used identically
everywhere): **an explicit keyword argument wins over the context field**;
a keyword left at its ``None`` default falls back to the context, and with
no context the historical defaults apply (seed 0, serial single-stream
execution, independent cascade).  Passing the old kwargs and passing an
equivalent ``RunContext`` therefore produce equal outputs by construction.

``executor`` is a live process-pool handle and is deliberately excluded from
serialization: :meth:`RunContext.to_dict` raises when one is attached.
``telemetry`` is equally runtime-only but is *silently omitted* instead:
results embed their spec's dict, and attaching an observer must not make a
result unserializable.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Mapping, NamedTuple

from .exceptions import SpecValidationError


def _require_mapping(data: Any, spec_name: str) -> None:
    """Shared ``from_dict`` guard: the payload must be a mapping."""
    if not isinstance(data, Mapping):
        raise SpecValidationError(
            f"{spec_name} expects a mapping, got {type(data).__name__}"
        )


def _check_unknown_keys(data: Mapping[str, Any], allowed: set, spec_name: str) -> None:
    """Shared ``from_dict`` guard: reject unknown keys, naming the offender."""
    for key in data:
        if key not in allowed:
            raise SpecValidationError(
                f"unknown key {key!r} for {spec_name}; "
                f"expected one of: {', '.join(sorted(allowed))}"
            )


class ResolvedContext(NamedTuple):
    """The knobs after merging explicit kwargs with a :class:`RunContext`."""

    seed: int
    jobs: int | None
    executor: Any | None
    model: Any | None
    telemetry: Any | None = None
    batch_mode: str | None = None


@dataclass(frozen=True)
class RunContext:
    """Seed, parallelism, and diffusion model for one experiment run.

    Parameters
    ----------
    seed:
        Master PRNG seed (the CLI's ``--run-seed``).  Entry points derive
        their sub-seeds from it exactly as they would from the equivalent
        ``seed=`` / ``experiment_seed=`` keyword.
    jobs:
        Worker-process count (the CLI's ``--jobs``).  ``None`` keeps the
        historical serial single-stream draw; any explicit value opts into
        the runtime's split-stream contract (bit-identical for every value).
    executor:
        Optional caller-owned :class:`~repro.runtime.executor.Executor`
        reused across calls.  Runtime-only: not serializable.
    model:
        Diffusion model name or :class:`~repro.diffusion.models.DiffusionModel`
        instance (the CLI's ``--diffusion``); ``None`` means the paper's
        independent cascade.
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry` collecting counters
        and spans for this run.  Runtime-only like ``executor``: never
        serialized (silently omitted, since results embed their spec), and
        ``None`` means the strict no-op :data:`~repro.obs.telemetry.NULL_TELEMETRY`.
    batch_mode:
        Simulation batching strategy (the CLI's ``--batch-mode``):
        ``"scalar"`` for the golden per-simulation kernels, ``"bitparallel"``
        for the opt-in 64-worlds-per-word fast path (different draw-order
        contract; see :mod:`repro.diffusion.bitparallel`).  ``None`` defers
        to the ``REPRO_BITPARALLEL`` environment variable and then to
        ``"scalar"``.
    """

    seed: int = 0
    jobs: int | None = None
    executor: Any | None = None
    model: Any | None = None
    telemetry: Any | None = None
    batch_mode: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise SpecValidationError(
                f"RunContext.seed must be an int, got {type(self.seed).__name__}"
            )
        if self.jobs is not None and (
            not isinstance(self.jobs, int) or isinstance(self.jobs, bool) or self.jobs < 1
        ):
            raise SpecValidationError(
                f"RunContext.jobs must be a positive int or None, got {self.jobs!r}"
            )
        if self.batch_mode is not None:
            # Eager validation mirroring the model-name check below.
            from .diffusion.bitparallel import require_batch_mode
            from .exceptions import ReproError

            try:
                require_batch_mode(self.batch_mode)
            except ReproError as error:
                raise SpecValidationError(str(error)) from None
        if isinstance(self.model, str):
            # Eager name validation: fail at construction (and from_dict)
            # time with the registry's message, not deep inside a run.
            from .diffusion.models import get_model
            from .exceptions import ReproError

            try:
                get_model(self.model)
            except ReproError as error:
                raise SpecValidationError(str(error)) from None

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """Serialize to a JSON-compatible dict (non-default fields only)."""
        if self.executor is not None:
            raise SpecValidationError(
                "a RunContext holding a live executor cannot be serialized; "
                "attach executors only to in-process contexts"
            )
        out: dict[str, Any] = {}
        if self.seed != 0:
            out["seed"] = self.seed
        if self.jobs is not None:
            out["jobs"] = self.jobs
        if self.model is not None:
            model = self.model
            out["model"] = model if isinstance(model, str) else model.name
        if self.batch_mode is not None:
            out["batch_mode"] = self.batch_mode
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunContext":
        """Deserialize; unknown keys are rejected with the offending key named."""
        _require_mapping(data, "RunContext")
        allowed = {field.name for field in dataclasses.fields(cls)} - {
            "executor",
            "telemetry",
        }
        _check_unknown_keys(data, allowed, "RunContext")
        return cls(**dict(data))


def resolve_context(
    context: RunContext | None,
    *,
    seed: Any | None = None,
    jobs: int | None = None,
    executor: Any | None = None,
    model: Any | None = None,
    telemetry: Any | None = None,
    batch_mode: str | None = None,
) -> ResolvedContext:
    """Merge explicit per-call kwargs with an optional :class:`RunContext`.

    Explicit (non-``None``) kwargs always win; ``None`` falls back to the
    context field and finally to the historical defaults (seed ``0``,
    serial execution, IC, no telemetry, scalar batching), so legacy call
    sites that never pass ``context=`` behave exactly as before.
    """
    if context is None:
        return ResolvedContext(
            seed if seed is not None else 0, jobs, executor, model, telemetry, batch_mode
        )
    return ResolvedContext(
        seed if seed is not None else context.seed,
        jobs if jobs is not None else context.jobs,
        executor if executor is not None else context.executor,
        model if model is not None else context.model,
        telemetry if telemetry is not None else context.telemetry,
        batch_mode if batch_mode is not None else context.batch_mode,
    )
