"""Sample-number sweeps: run trials across a grid of sample numbers.

Most of the paper's figures are functions of the sample number (beta, tau, or
theta) swept over powers of two.  :class:`SweepResult` holds one
:class:`~repro.experiments.trials.TrialSet` per sample number together with
derived per-point statistics (entropy, influence distribution), and
:func:`sweep_sample_numbers` produces it for one (graph, approach, k)
configuration.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Mapping, Sequence

from .._validation import require_non_negative_int, require_positive_int
from ..context import RunContext, resolve_context
from ..diffusion.models import DiffusionModel
from ..estimation.oracle import RRPoolOracle
from ..exceptions import ExperimentConfigurationError
from ..graphs.influence_graph import InfluenceGraph
from .distributions import InfluenceDistribution
from .trials import EstimatorFactory, TrialSet, check_model_consistency, run_trials


def powers_of_two(max_exponent: int, *, min_exponent: int = 0) -> tuple[int, ...]:
    """The paper's sample-number grid: ``2^min_exponent .. 2^max_exponent``."""
    require_non_negative_int(min_exponent, "min_exponent")
    require_non_negative_int(max_exponent, "max_exponent")
    if max_exponent < min_exponent:
        raise ExperimentConfigurationError(
            f"max_exponent ({max_exponent}) must be >= min_exponent ({min_exponent})"
        )
    return tuple(2 ** exponent for exponent in range(min_exponent, max_exponent + 1))


@dataclass(frozen=True)
class SweepResult:
    """Trials for one (graph, approach, k) across a grid of sample numbers."""

    graph_name: str
    approach: str
    k: int
    trial_sets: Mapping[int, TrialSet]

    # ------------------------------------------------------------------ #
    @property
    def sample_numbers(self) -> tuple[int, ...]:
        """The swept sample numbers in increasing order."""
        return tuple(sorted(self.trial_sets))

    def trial_set(self, num_samples: int) -> TrialSet:
        """The trial set at one sample number."""
        try:
            return self.trial_sets[num_samples]
        except KeyError:
            raise ExperimentConfigurationError(
                f"sample number {num_samples} was not part of this sweep"
            ) from None

    def entropies(self) -> dict[int, float]:
        """Shannon entropy of the seed-set distribution at each sample number."""
        return {
            s: trial_set.seed_set_distribution().entropy()
            for s, trial_set in sorted(self.trial_sets.items())
        }

    def mean_influences(self) -> dict[int, float]:
        """Mean oracle influence at each sample number."""
        return {
            s: trial_set.mean_influence for s, trial_set in sorted(self.trial_sets.items())
        }

    def influence_distributions(self) -> dict[int, InfluenceDistribution]:
        """Full influence-distribution summaries at each sample number."""
        return {
            s: InfluenceDistribution.from_values(trial_set.influences)
            for s, trial_set in sorted(self.trial_sets.items())
        }

    def mean_sample_sizes(self) -> dict[int, float]:
        """Mean stored sample size (vertices + edges) at each sample number."""
        sizes: dict[int, float] = {}
        for s, trial_set in sorted(self.trial_sets.items()):
            cost = trial_set.mean_cost()
            sizes[s] = cost["sample_vertices"] + cost["sample_edges"]
        return sizes

    def final_trial_set(self) -> TrialSet:
        """The trial set at the largest swept sample number."""
        return self.trial_sets[self.sample_numbers[-1]]


def sweep_sample_numbers(
    graph: InfluenceGraph,
    k: int,
    estimator_factory: EstimatorFactory,
    sample_numbers: Sequence[int],
    num_trials: int,
    *,
    oracle: RRPoolOracle,
    experiment_seed: int | None = None,
    approach: str | None = None,
    model: "str | DiffusionModel | None" = None,
    jobs: int | None = None,
    executor: "Executor | None" = None,
    context: RunContext | None = None,
    telemetry=None,
) -> SweepResult:
    """Run ``num_trials`` trials at every sample number in ``sample_numbers``.

    ``model`` validates instance feasibility once up front (the sampling
    itself follows the model bound into ``estimator_factory`` and
    ``oracle``).  ``jobs``/``executor`` parallelise the independent trials
    inside every grid point (see :func:`repro.experiments.trials.run_trials`);
    one worker pool is shared across the whole grid so process start-up is
    paid once.  Results are bit-identical for any worker count.  ``context``
    supplies any of ``experiment_seed``/``jobs``/``executor``/``model``/
    ``telemetry`` left at ``None`` (explicit kwargs win).  ``telemetry``
    records a ``sweep.points`` counter, one aggregated ``sweep.point`` span,
    and everything :func:`run_trials` records per grid point.
    """
    require_positive_int(k, "k")
    require_positive_int(num_trials, "num_trials")
    experiment_seed, jobs, executor, model, telemetry, _ = resolve_context(
        context,
        seed=experiment_seed,
        jobs=jobs,
        executor=executor,
        model=model,
        telemetry=telemetry,
    )
    if not sample_numbers:
        raise ExperimentConfigurationError("sample_numbers must not be empty")

    from ..obs import as_telemetry
    from ..runtime.engine import executor_scope

    tel = as_telemetry(telemetry)
    trial_sets: dict[int, TrialSet] = {}
    label = approach
    grid = sorted(set(int(s) for s in sample_numbers))
    check_model_consistency(graph, estimator_factory, grid[0], oracle, model, "sweep")
    tel.incr("sweep.points", len(grid))
    if jobs is None and executor is None:
        shared_scope = contextlib.nullcontext(None)
    else:
        shared_scope = executor_scope(jobs, executor)
    with shared_scope as shared_executor:
        for index, num_samples in enumerate(grid):
            with tel.span("sweep.point"):
                # repro-lint: allow[CTX001] context was flattened by
                # resolve_context above; jobs became the shared executor and
                # model was bound into estimator_factory/oracle up front.
                trial_set = run_trials(
                    graph,
                    k,
                    estimator_factory,
                    num_samples,
                    num_trials,
                    oracle=oracle,
                    # Distinct derived seed per grid point keeps trials
                    # independent across sample numbers while remaining
                    # reproducible.
                    experiment_seed=experiment_seed * 100_003 + index,
                    approach=approach,
                    executor=shared_executor,
                    telemetry=telemetry,
                )
            trial_sets[num_samples] = trial_set
            label = trial_set.approach
    return SweepResult(
        graph_name=graph.name,
        approach=label or "unknown",
        k=k,
        trial_sets=trial_sets,
    )
