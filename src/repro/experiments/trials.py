"""Repeated-trial execution: the core of the paper's methodology (Section 4).

For a fixed instance (graph + probability model), algorithm, sample number,
and seed size ``k``, the paper runs the algorithm ``T`` times with different
PRNG seeds, records every obtained seed set, and scores each with the shared
RR-pool oracle.  The resulting empirical *seed-set distribution* ``S(s)`` and
*influence distribution* ``I(s)`` are what Sections 5.1 and 5.2 analyse.

:func:`run_trials` performs exactly that for one configuration and returns a
:class:`TrialSet`; :mod:`repro.experiments.sweeps` stacks many of them across
sample numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .._validation import require_positive_int
from ..algorithms.framework import GreedyResult, InfluenceEstimator, greedy_maximize
from ..context import RunContext, resolve_context
from ..diffusion.costs import CostReport
from ..diffusion.models import DiffusionModel, resolve_model
from ..diffusion.random_source import RandomSource, trial_seeds
from ..estimation.oracle import RRPoolOracle
from ..exceptions import ExperimentConfigurationError
from ..graphs.influence_graph import InfluenceGraph
from .seed_distribution import SeedSetDistribution

#: A factory mapping a sample number to a fresh estimator instance.
EstimatorFactory = Callable[[int], InfluenceEstimator]


def check_model_consistency(
    graph: InfluenceGraph,
    estimator_factory: EstimatorFactory,
    num_samples: int,
    oracle: RRPoolOracle,
    model: "str | DiffusionModel | None",
    context: str,
) -> None:
    """Validate feasibility and reject cross-model experiment setups.

    Shared by :func:`run_trials` and
    :func:`repro.experiments.sweeps.sweep_sample_numbers`.  A declared
    ``model`` is validated against the graph; a probe estimator is built to
    discover the factory's model binding (structural heuristics have none and
    are exempt); and the oracle must score under the same model the
    estimators sample — otherwise every reported influence would silently
    use the wrong live-edge semantics.
    """
    declared = resolve_model(model) if model is not None else None
    if declared is not None:
        declared.validate(graph)
    # Constructing an estimator is sampling-free, so probing one instance to
    # read its model binding costs nothing.
    sampled = getattr(estimator_factory(num_samples), "model", None)
    names = {m.name for m in (declared, sampled) if m is not None}
    if len(names) > 1:
        raise ExperimentConfigurationError(
            f"{context} was given model={declared.name!r} but the estimator "
            f"factory builds {sampled.name!r} estimators"
        )
    if names and oracle.model.name not in names:
        expected = next(iter(names))
        raise ExperimentConfigurationError(
            f"{context} runs under the {expected!r} diffusion model but the "
            f"oracle scores under {oracle.model.name!r}; build the oracle "
            "with the same model"
        )


@dataclass(frozen=True)
class TrialOutcome:
    """One algorithm run: the selected seed set and its oracle score."""

    seed_set: tuple[int, ...]
    influence: float
    trial_seed: int
    cost: CostReport

    @property
    def k(self) -> int:
        """Seed-set size."""
        return len(self.seed_set)


@dataclass(frozen=True)
class TrialSet:
    """All trials of one (graph, approach, sample number, k) configuration."""

    graph_name: str
    approach: str
    num_samples: int
    k: int
    outcomes: tuple[TrialOutcome, ...]

    # ------------------------------------------------------------------ #
    @property
    def num_trials(self) -> int:
        """Number of independent trials."""
        return len(self.outcomes)

    @property
    def influences(self) -> np.ndarray:
        """Oracle influence scores of all trials, in trial order."""
        return np.array([outcome.influence for outcome in self.outcomes], dtype=np.float64)

    @property
    def mean_influence(self) -> float:
        """Mean of the influence distribution."""
        return float(self.influences.mean()) if self.outcomes else 0.0

    def seed_set_distribution(self) -> SeedSetDistribution:
        """Empirical distribution over canonical (sorted) seed sets."""
        return SeedSetDistribution.from_seed_sets(
            [outcome.seed_set for outcome in self.outcomes]
        )

    def mean_cost(self) -> dict[str, float]:
        """Average traversal cost and sample size per trial."""
        if not self.outcomes:
            return {
                "traversal_vertices": 0.0,
                "traversal_edges": 0.0,
                "sample_vertices": 0.0,
                "sample_edges": 0.0,
            }
        keys = ("traversal_vertices", "traversal_edges", "sample_vertices", "sample_edges")
        totals = dict.fromkeys(keys, 0.0)
        for outcome in self.outcomes:
            for key, value in outcome.cost.as_dict().items():
                totals[key] += value
        return {key: totals[key] / len(self.outcomes) for key in keys}

    def quality_probability(self, threshold: float) -> float:
        """Fraction of trials whose influence is at least ``threshold``."""
        if not self.outcomes:
            return 0.0
        return float(np.mean(self.influences >= threshold))


def _trials_chunk_worker(
    task: tuple[InfluenceGraph, int, EstimatorFactory, int, Sequence[int]],
) -> list[tuple[int, GreedyResult]]:
    """Run one chunk of greedy trials; each trial is fixed by its own seed.

    Module-level so it pickles into worker processes.  Oracle scoring stays
    in the parent process: shipping the shared RR pool to every worker would
    dwarf the trial work, and parent-side scoring guarantees identical seed
    sets receive identical scores no matter where they were computed.
    """
    graph, k, estimator_factory, num_samples, chunk_seeds = task
    results: list[tuple[int, GreedyResult]] = []
    for trial_seed in chunk_seeds:
        estimator = estimator_factory(num_samples)
        result = greedy_maximize(graph, k, estimator, seed=RandomSource(trial_seed))
        results.append((trial_seed, result))
    return results


def run_trials(
    graph: InfluenceGraph,
    k: int,
    estimator_factory: EstimatorFactory,
    num_samples: int,
    num_trials: int,
    *,
    oracle: RRPoolOracle,
    experiment_seed: int | None = None,
    approach: str | None = None,
    model: "str | DiffusionModel | None" = None,
    jobs: int | None = None,
    executor: "Executor | None" = None,
    context: RunContext | None = None,
    telemetry=None,
) -> TrialSet:
    """Run ``num_trials`` independent greedy trials and score them with ``oracle``.

    Parameters
    ----------
    estimator_factory:
        Called as ``estimator_factory(num_samples)`` once per trial so each
        trial starts from a fresh estimator (a single reusable instance would
        also work because ``build`` resets state, but a factory keeps the API
        honest about independence).  With ``jobs > 1`` the factory must be
        picklable (a module-level function or :func:`functools.partial` of
        one); the named factories from
        :mod:`repro.experiments.factories` qualify.
    oracle:
        The shared :class:`RRPoolOracle`; using the same oracle across
        configurations guarantees identical seed sets get identical scores.
    experiment_seed:
        Master seed; per-trial seeds are derived deterministically from it.
        ``None`` falls back to ``context.seed`` (historical default ``0``).
    approach:
        Override for the approach label (defaults to the estimator's).
    model:
        Diffusion model the experiment runs under; used to validate the
        instance's feasibility up front (e.g. LT incoming-weight sums) and
        cross-checked — together with the model bound into
        ``estimator_factory``, probed even when this parameter is omitted —
        against the ``oracle``'s model, rejecting setups that would silently
        score seed sets with the wrong live-edge semantics.  The sampling
        itself follows the bindings in ``estimator_factory`` and ``oracle``
        (see :func:`repro.experiments.factories.estimator_factory`).
    jobs, executor:
        Optional parallelism (see :mod:`repro.runtime`).  Every trial is
        fully determined by its derived trial seed, so serial and parallel
        execution — and any worker count — produce bit-identical trial sets.
    context:
        Optional :class:`~repro.context.RunContext` supplying any of
        ``experiment_seed``/``jobs``/``executor``/``model``/``telemetry``
        left at their ``None`` defaults; explicit kwargs always win.
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry`; records a
        ``trials.count`` counter, mirrors every trial's cost report into the
        ``traversal.*``/``sample.*`` counters (deterministic across ``jobs``
        because trial outcomes are bit-identical), and captures the runtime
        dispatch metrics on the parallel path.
    """
    require_positive_int(k, "k")
    require_positive_int(num_samples, "num_samples")
    require_positive_int(num_trials, "num_trials")
    experiment_seed, jobs, executor, model, telemetry, _ = resolve_context(
        context,
        seed=experiment_seed,
        jobs=jobs,
        executor=executor,
        model=model,
        telemetry=telemetry,
    )
    from ..obs import as_telemetry

    tel = as_telemetry(telemetry)
    check_model_consistency(graph, estimator_factory, num_samples, oracle, model, "trials")
    if oracle.graph.num_vertices != graph.num_vertices:
        raise ExperimentConfigurationError(
            "oracle was built for a graph with a different number of vertices"
        )

    seeds = trial_seeds(experiment_seed, num_trials)
    with tel.span("trials.run"):
        if jobs is None and executor is None:
            pairs = _trials_chunk_worker((graph, k, estimator_factory, num_samples, seeds))
        else:
            from ..runtime.chunking import chunk_spans, default_num_chunks
            from ..runtime.engine import executor_scope, instrumented_map

            with executor_scope(jobs, executor) as resolved:
                spans = chunk_spans(num_trials, default_num_chunks(num_trials, resolved.jobs))
                tasks = [
                    (graph, k, estimator_factory, num_samples, seeds[start:stop])
                    for start, stop in spans
                ]
                pairs = [
                    pair
                    for chunk in instrumented_map(
                        resolved, _trials_chunk_worker, tasks, telemetry=telemetry
                    )
                    for pair in chunk
                ]

    tel.incr("trials.count", num_trials)
    label = approach
    outcomes: list[TrialOutcome] = []
    for trial_seed, result in pairs:
        if label is None:
            label = result.approach
        # Mirror each trial's cost accounting onto the telemetry layer: the
        # totals reproduce the legacy TraversalCost/SampleSize sums exactly,
        # and — because trial outcomes are bit-identical for every jobs
        # value — these counters are jobs-deterministic.
        tel.record_cost(result.cost)
        outcomes.append(
            TrialOutcome(
                seed_set=result.seed_set,
                influence=oracle.spread(result.seed_set),
                trial_seed=trial_seed,
                cost=result.cost,
            )
        )
    return TrialSet(
        graph_name=graph.name,
        approach=label or "unknown",
        num_samples=num_samples,
        k=k,
        outcomes=tuple(outcomes),
    )


def run_single_trial(
    graph: InfluenceGraph,
    k: int,
    estimator: InfluenceEstimator,
    *,
    oracle: RRPoolOracle,
    trial_seed: int = 0,
) -> TrialOutcome:
    """Run one greedy trial with an explicit estimator and trial seed."""
    result = greedy_maximize(graph, k, estimator, seed=RandomSource(trial_seed))
    return TrialOutcome(
        seed_set=result.seed_set,
        influence=oracle.spread(result.seed_set),
        trial_seed=trial_seed,
        cost=result.cost,
    )


def merge_trial_sets(trial_sets: Sequence[TrialSet]) -> TrialSet:
    """Merge trial sets of the same configuration into one larger set.

    Useful for incrementally extending ``T`` without re-running earlier trials.
    """
    if not trial_sets:
        raise ExperimentConfigurationError("cannot merge an empty sequence of trial sets")
    first = trial_sets[0]
    for other in trial_sets[1:]:
        same_configuration = (
            other.graph_name == first.graph_name
            and other.approach == first.approach
            and other.num_samples == first.num_samples
            and other.k == first.k
        )
        if not same_configuration:
            raise ExperimentConfigurationError(
                "trial sets with different configurations cannot be merged"
            )
    all_outcomes = tuple(
        outcome for trial_set in trial_sets for outcome in trial_set.outcomes
    )
    return TrialSet(
        graph_name=first.graph_name,
        approach=first.approach,
        num_samples=first.num_samples,
        k=first.k,
        outcomes=all_outcomes,
    )
