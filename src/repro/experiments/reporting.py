"""Plain-text rendering of tables and figure series.

The benchmark harness prints, for every paper table and figure, the same rows
or series the paper reports.  These helpers format lists of dictionaries as
aligned text tables and (sample number, value) series as compact textual
"figures", so benchmark output is readable in a terminal and diffable in
EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence


def _format_cell(value: object) -> str:
    """Render one table cell."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if value != 0 and (abs(value) >= 1e6 or abs(value) < 1e-3):
            return f"{value:.3g}"
        return f"{value:,.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Format dictionaries as an aligned text table.

    Parameters
    ----------
    rows:
        One mapping per row; missing keys render as ``-``.
    columns:
        Column order; defaults to the keys of the first row.
    title:
        Optional title printed above the table.
    """
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[_format_cell(row.get(column)) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for line in rendered:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def format_series(
    series: Mapping[int, float] | Mapping[int, object],
    *,
    x_label: str = "sample_number",
    y_label: str = "value",
    title: str | None = None,
    log2_x: bool = True,
) -> str:
    """Format a (sample number -> value) mapping as a two-column text series.

    With ``log2_x`` the x column is shown as ``2^e`` like the paper's axes.
    """
    rows = []
    for x in sorted(series):
        value = series[x]
        x_render = f"2^{int(math.log2(x))}" if log2_x and x > 0 and (x & (x - 1)) == 0 else str(x)
        rows.append({x_label: x_render, y_label: value})
    return format_table(rows, columns=[x_label, y_label], title=title)


def format_multi_series(
    named_series: Mapping[str, Mapping[int, float]],
    *,
    x_label: str = "sample_number",
    title: str | None = None,
    log2_x: bool = True,
) -> str:
    """Format several aligned series (e.g. one per algorithm) side by side."""
    all_x = sorted({x for series in named_series.values() for x in series})
    rows = []
    for x in all_x:
        x_render = f"2^{int(math.log2(x))}" if log2_x and x > 0 and (x & (x - 1)) == 0 else str(x)
        row: dict[str, object] = {x_label: x_render}
        for name, series in named_series.items():
            row[name] = series.get(x)
        rows.append(row)
    return format_table(rows, columns=[x_label, *named_series.keys()], title=title)


def ascii_sparkline(values: Sequence[float], *, width: int = 40) -> str:
    """A crude one-line sparkline for quick visual inspection in terminals."""
    if not values:
        return ""
    blocks = " ▁▂▃▄▅▆▇█"
    lowest = min(values)
    highest = max(values)
    span = highest - lowest
    picked = values
    if len(values) > width:
        step = len(values) / width
        picked = [values[int(index * step)] for index in range(width)]
    if span == 0:
        return blocks[1] * len(picked)
    return "".join(
        blocks[1 + int((value - lowest) / span * (len(blocks) - 2))] for value in picked
    )
