"""Experiment harness: trials, distributions, convergence, comparisons, costs."""

from .comparison import (
    ComparablePoint,
    ComparableRatioCurve,
    comparable_ratio_curve,
    median_comparable_number_ratio,
    median_comparable_size_ratio,
)
from .convergence import (
    LeastSampleNumber,
    entropy_convergence_point,
    entropy_scaling_factor,
    least_sample_number,
    reference_spread_from_sweep,
)
from .distributions import (
    InfluenceDistribution,
    mean_versus_statistics,
    near_optimal_probability,
)
from .factories import (
    PAPER_APPROACHES,
    available_approaches,
    estimator_factory,
    make_estimator,
)
from .reporting import ascii_sparkline, format_multi_series, format_series, format_table
from .seed_distribution import SeedSetDistribution, entropy_of_counts, shannon_entropy
from .sweeps import SweepResult, powers_of_two, sweep_sample_numbers
from .traversal import (
    EqualAccuracyCostRow,
    TraversalCostRow,
    empirical_cost_ratios,
    equal_accuracy_costs,
    per_sample_traversal_cost,
    traversal_cost_table,
)
from .trials import (
    TrialOutcome,
    TrialSet,
    merge_trial_sets,
    run_single_trial,
    run_trials,
)

__all__ = [
    "TrialOutcome",
    "TrialSet",
    "run_trials",
    "run_single_trial",
    "merge_trial_sets",
    "SeedSetDistribution",
    "shannon_entropy",
    "entropy_of_counts",
    "InfluenceDistribution",
    "near_optimal_probability",
    "mean_versus_statistics",
    "SweepResult",
    "powers_of_two",
    "sweep_sample_numbers",
    "LeastSampleNumber",
    "least_sample_number",
    "reference_spread_from_sweep",
    "entropy_convergence_point",
    "entropy_scaling_factor",
    "ComparablePoint",
    "ComparableRatioCurve",
    "comparable_ratio_curve",
    "median_comparable_number_ratio",
    "median_comparable_size_ratio",
    "TraversalCostRow",
    "EqualAccuracyCostRow",
    "per_sample_traversal_cost",
    "traversal_cost_table",
    "empirical_cost_ratios",
    "equal_accuracy_costs",
    "PAPER_APPROACHES",
    "available_approaches",
    "estimator_factory",
    "make_estimator",
    "format_table",
    "format_series",
    "format_multi_series",
    "ascii_sparkline",
]
