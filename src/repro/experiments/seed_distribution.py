"""Empirical seed-set distributions and their Shannon entropy (Section 5.1).

The paper measures the diversity of the random solutions returned by each
algorithm with the Shannon entropy ``H = -sum_S p_S log2 p_S`` of the
empirical distribution over seed *sets*.  A degenerate distribution (a single
seed set across all trials) has entropy 0; a distribution built from ``T``
trials can never exceed ``log2 T`` (~9.97 for the paper's 1,000 trials).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Mapping


@dataclass(frozen=True)
class SeedSetDistribution:
    """Empirical probability distribution over canonical seed sets."""

    counts: Mapping[tuple[int, ...], int]
    num_trials: int

    # ------------------------------------------------------------------ #
    @staticmethod
    def from_seed_sets(seed_sets: Iterable[tuple[int, ...]]) -> "SeedSetDistribution":
        """Build the distribution from raw per-trial seed sets."""
        canonical = [tuple(sorted(seed_set)) for seed_set in seed_sets]
        counter = Counter(canonical)
        return SeedSetDistribution(counts=dict(counter), num_trials=len(canonical))

    # ------------------------------------------------------------------ #
    @property
    def support_size(self) -> int:
        """Number of distinct seed sets observed."""
        return len(self.counts)

    @property
    def is_degenerate(self) -> bool:
        """Whether all trials returned the same seed set."""
        return self.support_size <= 1

    def probability(self, seed_set: tuple[int, ...]) -> float:
        """Empirical probability mass of ``seed_set``."""
        if self.num_trials == 0:
            return 0.0
        return self.counts.get(tuple(sorted(seed_set)), 0) / self.num_trials

    def mode(self) -> tuple[tuple[int, ...], float]:
        """The most frequent seed set and its empirical probability."""
        if not self.counts:
            return ((), 0.0)
        seed_set, count = max(self.counts.items(), key=lambda item: (item[1], item[0]))
        return seed_set, count / self.num_trials

    def entropy(self) -> float:
        """Shannon entropy in bits of the empirical distribution."""
        if self.num_trials == 0:
            return 0.0
        total = 0.0
        for count in self.counts.values():
            p = count / self.num_trials
            total -= p * math.log2(p)
        return total

    def max_possible_entropy(self) -> float:
        """``log2(num_trials)``: the entropy ceiling imposed by the trial count."""
        if self.num_trials <= 1:
            return 0.0
        return math.log2(self.num_trials)

    def top_seed_sets(self, count: int = 5) -> list[tuple[tuple[int, ...], float]]:
        """The ``count`` most frequent seed sets and their probabilities."""
        ordered = sorted(self.counts.items(), key=lambda item: (-item[1], item[0]))
        return [(seed_set, c / self.num_trials) for seed_set, c in ordered[:count]]

    def total_variation_distance(self, other: "SeedSetDistribution") -> float:
        """Total variation distance to another empirical distribution."""
        support = set(self.counts) | set(other.counts)
        distance = 0.0
        # Sorted so the float accumulation order (and thus the last-ulp
        # rounding) never depends on set hashing.
        for seed_set in sorted(support):
            distance += abs(self.probability(seed_set) - other.probability(seed_set))
        return distance / 2.0


def shannon_entropy(seed_sets: Iterable[tuple[int, ...]]) -> float:
    """Convenience wrapper: entropy of the empirical distribution of ``seed_sets``."""
    return SeedSetDistribution.from_seed_sets(seed_sets).entropy()


def entropy_of_counts(counts: Iterable[int]) -> float:
    """Entropy (bits) of a distribution given by non-negative integer counts."""
    counts = [int(c) for c in counts if int(c) > 0]
    total = sum(counts)
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counts:
        p = count / total
        entropy -= p * math.log2(p)
    return entropy
