"""Least sample number for near-optimal solutions (Table 5, Section 5.2.1).

The paper defines the reference "Exact Greedy" value as the oracle influence
of the unique seed set obtained once the seed-set distribution has become
degenerate (entropy 0) at large sample numbers; a trial counts as
*near-optimal* if its influence reaches 95% of that reference.  Table 5 then
reports, per instance and per approach, the least sample number at which
near-optimal solutions are obtained with probability at least 99%, together
with the entropy of the seed-set distribution at that sample number.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ExperimentConfigurationError
from .distributions import near_optimal_probability
from .sweeps import SweepResult


@dataclass(frozen=True)
class LeastSampleNumber:
    """Result of the Table 5 search for one (instance, approach) pair."""

    approach: str
    sample_number: int | None
    entropy: float | None
    reference_spread: float
    quality: float
    probability: float

    @property
    def found(self) -> bool:
        """Whether any swept sample number met the requirement."""
        return self.sample_number is not None

    def as_row(self) -> dict[str, object]:
        """Flatten to a dictionary for table rendering (log2 column like the paper)."""
        import math

        return {
            "approach": self.approach,
            "sample_number": self.sample_number if self.found else ">max",
            "log2_sample_number": (
                round(math.log2(self.sample_number), 2) if self.found else None
            ),
            "entropy": round(self.entropy, 2) if self.entropy is not None else None,
            "reference_spread": round(self.reference_spread, 4),
        }


def reference_spread_from_sweep(sweep: SweepResult) -> float:
    """The "Exact Greedy" reference value extracted from a sweep.

    Following the paper, the reference is the influence of the modal seed set
    at the largest swept sample number (when the distribution is degenerate
    this is exactly the unique limit solution; otherwise it is the best
    available stand-in and the caller may prefer to sweep further).
    """
    final = sweep.final_trial_set()
    distribution = final.seed_set_distribution()
    modal_set, _ = distribution.mode()
    for outcome in final.outcomes:
        if outcome.seed_set == modal_set:
            return outcome.influence
    raise ExperimentConfigurationError("sweep contains no trials")


def least_sample_number(
    sweep: SweepResult,
    reference_spread: float,
    *,
    quality: float = 0.95,
    probability: float = 0.99,
) -> LeastSampleNumber:
    """Find the least swept sample number meeting the Table 5 requirement.

    Parameters
    ----------
    sweep:
        A :class:`SweepResult` for one (graph, approach, k).
    reference_spread:
        The Exact Greedy reference influence (use
        :func:`reference_spread_from_sweep` or an external oracle value).
    quality:
        Near-optimality ratio (paper: 0.95).
    probability:
        Required success probability over trials (paper: 0.99).
    """
    if reference_spread <= 0:
        raise ExperimentConfigurationError(
            f"reference_spread must be positive, got {reference_spread}"
        )
    if not 0.0 < probability <= 1.0:
        raise ExperimentConfigurationError(
            f"probability must lie in (0, 1], got {probability}"
        )
    for sample_number in sweep.sample_numbers:
        trial_set = sweep.trial_set(sample_number)
        success = near_optimal_probability(
            trial_set.influences, reference_spread, quality=quality
        )
        if success >= probability:
            entropy = trial_set.seed_set_distribution().entropy()
            return LeastSampleNumber(
                approach=sweep.approach,
                sample_number=sample_number,
                entropy=entropy,
                reference_spread=reference_spread,
                quality=quality,
                probability=probability,
            )
    return LeastSampleNumber(
        approach=sweep.approach,
        sample_number=None,
        entropy=None,
        reference_spread=reference_spread,
        quality=quality,
        probability=probability,
    )


def entropy_convergence_point(
    sweep: SweepResult, *, threshold: float = 0.0
) -> int | None:
    """Smallest swept sample number whose seed-set entropy is <= ``threshold``.

    With the default threshold 0 this detects the convergence to a unique
    solution reported in Section 5.1 (Figure 1's "converged" annotation).
    """
    if threshold < 0:
        raise ExperimentConfigurationError(f"threshold must be >= 0, got {threshold}")
    for sample_number, entropy in sweep.entropies().items():
        if entropy <= threshold:
            return sample_number
    return None


def entropy_scaling_factor(
    sweep_a: SweepResult, sweep_b: SweepResult, *, entropy_level: float = 1.0
) -> float | None:
    """Horizontal scaling between two entropy-decay curves (Figure 1's "x2^4").

    Finds, for each sweep, the smallest sample number whose entropy falls to
    or below ``entropy_level`` (interpolating on the log2 axis between grid
    points) and returns the ratio ``sample_b / sample_a``.  Returns ``None``
    when either curve never reaches the level within its sweep range.
    """
    import math

    def crossing(sweep: SweepResult) -> float | None:
        previous: tuple[int, float] | None = None
        for sample_number, entropy in sweep.entropies().items():
            if entropy <= entropy_level:
                if previous is None:
                    return float(sample_number)
                prev_samples, prev_entropy = previous
                if prev_entropy == entropy:
                    return float(sample_number)
                # Linear interpolation in (log2 samples, entropy) space.
                fraction = (prev_entropy - entropy_level) / (prev_entropy - entropy)
                log2_value = math.log2(prev_samples) + fraction * (
                    math.log2(sample_number) - math.log2(prev_samples)
                )
                return 2.0 ** log2_value
            previous = (sample_number, entropy)
        return None

    crossing_a = crossing(sweep_a)
    crossing_b = crossing(sweep_b)
    if crossing_a is None or crossing_b is None or crossing_a == 0:
        return None
    return crossing_b / crossing_a
