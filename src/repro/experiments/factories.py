"""Named estimator factories used by the experiment harness and benchmarks.

Experiments are usually configured with strings ("oneshot", "snapshot",
"ris"); this module maps those names to factory callables compatible with
:data:`repro.experiments.trials.EstimatorFactory`.

All factories are module-level functions (not lambdas) so they pickle into
worker processes, which is what lets :func:`repro.experiments.trials.run_trials`
fan trials out across a process pool.  :func:`estimator_factory` can also
bind a ``jobs``/``executor`` setting into the returned factory for the
approaches whose Build phase supports parallel sampling (Snapshot and RIS) —
avoid combining that with trial-level parallelism (nesting process pools
multiplies workers without adding CPUs) — and a diffusion ``model`` for the
sampling approaches (Oneshot, Snapshot, RIS).  The structural heuristics
(degree, single discount, random) never sample the diffusion process, so a
``model`` binding is meaningless for them and is ignored.
"""

from __future__ import annotations

import functools
from typing import Callable

from ..algorithms.framework import InfluenceEstimator
from ..context import RunContext, resolve_context
from ..algorithms.heuristics import (
    DegreeEstimator,
    RandomEstimator,
    SingleDiscountEstimator,
    WeightedDegreeEstimator,
)
from ..algorithms.oneshot import OneshotEstimator
from ..algorithms.ris import RISEstimator
from ..algorithms.snapshot import SnapshotEstimator
from ..diffusion.models import resolve_model
from ..exceptions import InvalidParameterError

#: Names of the three approaches studied by the paper, in its order.
PAPER_APPROACHES: tuple[str, ...] = ("oneshot", "snapshot", "ris")


def _make_oneshot(num_samples: int, *, model=None, batch_mode=None) -> InfluenceEstimator:
    return OneshotEstimator(num_samples, model=model, batch_mode=batch_mode)


def _make_snapshot(
    num_samples: int, *, jobs=None, executor=None, model=None
) -> InfluenceEstimator:
    return SnapshotEstimator(num_samples, model=model, jobs=jobs, executor=executor)


def _make_snapshot_reduce(
    num_samples: int, *, jobs=None, executor=None, model=None
) -> InfluenceEstimator:
    return SnapshotEstimator(
        num_samples, update_strategy="reduce", model=model, jobs=jobs, executor=executor
    )


def _make_ris(
    num_samples: int, *, jobs=None, executor=None, model=None, batch_mode=None
) -> InfluenceEstimator:
    return RISEstimator(
        num_samples, model=model, jobs=jobs, executor=executor, batch_mode=batch_mode
    )


def _make_degree(_num_samples: int) -> InfluenceEstimator:
    return DegreeEstimator()


def _make_weighted_degree(_num_samples: int) -> InfluenceEstimator:
    return WeightedDegreeEstimator()


def _make_single_discount(_num_samples: int) -> InfluenceEstimator:
    return SingleDiscountEstimator()


def _make_random(_num_samples: int) -> InfluenceEstimator:
    return RandomEstimator()


_FACTORIES: dict[str, Callable[[int], InfluenceEstimator]] = {
    "oneshot": _make_oneshot,
    "snapshot": _make_snapshot,
    "snapshot_reduce": _make_snapshot_reduce,
    "ris": _make_ris,
    "degree": _make_degree,
    "weighted_degree": _make_weighted_degree,
    "single_discount": _make_single_discount,
    "random": _make_random,
}

#: Approaches whose Build phase accepts ``jobs``/``executor``.
_PARALLEL_BUILD: frozenset[str] = frozenset({"snapshot", "snapshot_reduce", "ris"})

#: Approaches that sample the diffusion process and therefore accept ``model``.
_MODEL_AWARE: frozenset[str] = frozenset({"oneshot", "snapshot", "snapshot_reduce", "ris"})

#: Approaches with a bit-parallel fast path (the forward-cascade and RR-set
#: kernels; snapshots store whole live-edge graphs, which the mask kernels do
#: not produce, so the snapshot approaches stay scalar).
_BATCH_AWARE: frozenset[str] = frozenset({"oneshot", "ris"})


def available_approaches() -> tuple[str, ...]:
    """Names accepted by :func:`estimator_factory`."""
    return tuple(sorted(_FACTORIES))


def estimator_factory(
    approach: str,
    *,
    jobs: int | None = None,
    executor=None,
    model=None,
    context: RunContext | None = None,
    batch_mode: str | None = None,
) -> Callable[[int], InfluenceEstimator]:
    """Return the factory for ``approach`` (e.g. ``"oneshot"``).

    With ``jobs``/``executor``, approaches supporting parallel Build get the
    setting bound into the factory (as a picklable ``functools.partial``);
    approaches without a parallel Build return the plain factory.  ``model``
    (a diffusion-model name or instance) is bound the same way for the
    sampling approaches; the structural heuristics ignore it because they
    never simulate diffusion.  ``batch_mode`` is bound for the approaches
    with a bit-parallel fast path (Oneshot and RIS) and ignored elsewhere.
    ``context`` supplies any of the knobs left at ``None`` (an explicit
    kwarg always wins).
    """
    _, jobs, executor, model, _, batch_mode = resolve_context(
        context, jobs=jobs, executor=executor, model=model, batch_mode=batch_mode
    )
    try:
        base = _FACTORIES[approach]
    except KeyError:
        raise InvalidParameterError(
            f"unknown approach {approach!r}; available: {', '.join(sorted(_FACTORIES))}"
        ) from None
    kwargs: dict[str, object] = {}
    if (jobs is not None or executor is not None) and approach in _PARALLEL_BUILD:
        kwargs["jobs"] = jobs
        kwargs["executor"] = executor
    if model is not None and approach in _MODEL_AWARE:
        kwargs["model"] = resolve_model(model)
    if batch_mode is not None and approach in _BATCH_AWARE:
        kwargs["batch_mode"] = batch_mode
    if not kwargs:
        return base
    return functools.partial(base, **kwargs)


def make_estimator(
    approach: str,
    num_samples: int,
    *,
    jobs: int | None = None,
    executor=None,
    model=None,
    context: RunContext | None = None,
    batch_mode: str | None = None,
) -> InfluenceEstimator:
    """Construct one estimator instance for ``approach`` with ``num_samples``."""
    return estimator_factory(
        approach,
        jobs=jobs,
        executor=executor,
        model=model,
        context=context,
        batch_mode=batch_mode,
    )(num_samples)
