"""Named estimator factories used by the experiment harness and benchmarks.

Experiments are usually configured with strings ("oneshot", "snapshot",
"ris"); this module maps those names to factory callables compatible with
:data:`repro.experiments.trials.EstimatorFactory`.
"""

from __future__ import annotations

from typing import Callable

from ..algorithms.framework import InfluenceEstimator
from ..algorithms.heuristics import (
    DegreeEstimator,
    RandomEstimator,
    SingleDiscountEstimator,
    WeightedDegreeEstimator,
)
from ..algorithms.oneshot import OneshotEstimator
from ..algorithms.ris import RISEstimator
from ..algorithms.snapshot import SnapshotEstimator
from ..exceptions import InvalidParameterError

#: Names of the three approaches studied by the paper, in its order.
PAPER_APPROACHES: tuple[str, ...] = ("oneshot", "snapshot", "ris")

_FACTORIES: dict[str, Callable[[int], InfluenceEstimator]] = {
    "oneshot": lambda num_samples: OneshotEstimator(num_samples),
    "snapshot": lambda num_samples: SnapshotEstimator(num_samples),
    "snapshot_reduce": lambda num_samples: SnapshotEstimator(
        num_samples, update_strategy="reduce"
    ),
    "ris": lambda num_samples: RISEstimator(num_samples),
    "degree": lambda _num_samples: DegreeEstimator(),
    "weighted_degree": lambda _num_samples: WeightedDegreeEstimator(),
    "single_discount": lambda _num_samples: SingleDiscountEstimator(),
    "random": lambda _num_samples: RandomEstimator(),
}


def available_approaches() -> tuple[str, ...]:
    """Names accepted by :func:`estimator_factory`."""
    return tuple(sorted(_FACTORIES))


def estimator_factory(approach: str) -> Callable[[int], InfluenceEstimator]:
    """Return the factory for ``approach`` (e.g. ``"oneshot"``)."""
    try:
        return _FACTORIES[approach]
    except KeyError:
        raise InvalidParameterError(
            f"unknown approach {approach!r}; available: {', '.join(sorted(_FACTORIES))}"
        ) from None


def make_estimator(approach: str, num_samples: int) -> InfluenceEstimator:
    """Construct one estimator instance for ``approach`` with ``num_samples``."""
    return estimator_factory(approach)(num_samples)
