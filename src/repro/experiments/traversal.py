"""Per-sample traversal cost and equal-accuracy cost (Tables 8 and 9).

Table 8 measures the traversal cost of each approach at seed size ``k = 1``
and sample number 1: the greedy framework's first iteration evaluates every
vertex, so

* Oneshot with ``beta = 1`` simulates one cascade from every vertex and costs
  ``sum_v Inf(v)`` vertex examinations in expectation,
* Snapshot with ``tau = 1`` runs one live-edge BFS from every vertex (same
  vertex cost, but only live edges are scanned), and
* RIS with ``theta = 1`` generates a single RR set and costs about ``EPT``
  vertex examinations.

Table 9 then conditions the three approaches to identical accuracy: with
comparable number ratios ``cr1`` (Oneshot vs Snapshot) and ``cr2`` (RIS vs
Snapshot), setting ``beta = cr1 * gamma``, ``tau = gamma``, ``theta = cr2 *
gamma`` equalises the mean influence, and the equal-accuracy cost per unit
``gamma`` is the per-sample cost multiplied by the respective ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from .._validation import require_positive_int
from ..algorithms.framework import InfluenceEstimator, greedy_maximize
from ..context import RunContext, resolve_context
from ..diffusion.models import DiffusionModel, resolve_model
from ..diffusion.random_source import RandomSource
from ..exceptions import ExperimentConfigurationError
from ..graphs.influence_graph import InfluenceGraph

#: Factory signature used by the traversal-cost harness.
EstimatorFactory = Callable[[int], InfluenceEstimator]


@dataclass(frozen=True)
class TraversalCostRow:
    """Average per-run traversal cost of one approach on one instance (Table 8)."""

    graph_name: str
    approach: str
    vertex_cost: float
    edge_cost: float
    sample_vertices: float
    sample_edges: float
    num_repetitions: int

    @property
    def total_cost(self) -> float:
        """Vertices plus edges examined."""
        return self.vertex_cost + self.edge_cost

    def as_row(self) -> dict[str, object]:
        """Flatten for table rendering."""
        return {
            "network": self.graph_name,
            "algorithm": self.approach,
            "vertex": round(self.vertex_cost, 1),
            "edge": round(self.edge_cost, 1),
            "sample_vertices": round(self.sample_vertices, 1),
            "sample_edges": round(self.sample_edges, 1),
        }


def _repetition_worker(
    task: tuple[InfluenceGraph, EstimatorFactory, int, int, list[int]],
) -> list[tuple[str, int, int, int, int]]:
    """Run a chunk of cost-measurement repetitions (picklable worker)."""
    graph, estimator_factory, k, num_samples, rep_seeds = task
    rows: list[tuple[str, int, int, int, int]] = []
    for rep_seed in rep_seeds:
        estimator = estimator_factory(num_samples)
        result = greedy_maximize(graph, k, estimator, seed=RandomSource(rep_seed))
        cost = result.cost
        rows.append(
            (
                estimator.approach,
                cost.traversal.vertices,
                cost.traversal.edges,
                cost.sample_size.vertices,
                cost.sample_size.edges,
            )
        )
    return rows


def per_sample_traversal_cost(
    graph: InfluenceGraph,
    estimator_factory: EstimatorFactory,
    *,
    k: int = 1,
    num_samples: int = 1,
    num_repetitions: int = 3,
    experiment_seed: int | None = None,
    model: "str | DiffusionModel | None" = None,
    jobs: int | None = None,
    executor: "Executor | None" = None,
    context: RunContext | None = None,
    telemetry=None,
) -> TraversalCostRow:
    """Measure the Table 8 traversal cost for one approach on one instance.

    The cost is averaged over ``num_repetitions`` independent greedy runs to
    smooth the randomness of cascades / snapshots / RR targets.  ``model``
    validates instance feasibility up front (sampling follows the model bound
    into ``estimator_factory``).  Every repetition is fixed by its own
    derived seed, so ``jobs``/``executor`` parallelism (see
    :mod:`repro.runtime`) returns bit-identical rows.  ``context`` supplies
    any of ``experiment_seed``/``jobs``/``executor``/``model``/``telemetry``
    left at ``None`` (explicit kwargs win).  ``telemetry`` records the summed
    raw per-repetition costs as ``traversal.*``/``sample.*`` counters
    (jobs-deterministic because the rows are bit-identical).
    """
    require_positive_int(num_repetitions, "num_repetitions")
    experiment_seed, jobs, executor, model, telemetry, _ = resolve_context(
        context,
        seed=experiment_seed,
        jobs=jobs,
        executor=executor,
        model=model,
        telemetry=telemetry,
    )
    from ..obs import as_telemetry

    tel = as_telemetry(telemetry)
    if model is not None:
        resolve_model(model).validate(graph)
    rep_seeds = [
        experiment_seed * 1_000 + repetition for repetition in range(num_repetitions)
    ]
    from ..runtime.chunking import chunk_spans, default_num_chunks
    from ..runtime.engine import executor_scope, instrumented_map

    with tel.span("traversal.approach"), executor_scope(jobs, executor) as resolved:
        spans = chunk_spans(
            num_repetitions, default_num_chunks(num_repetitions, resolved.jobs)
        )
        tasks = [
            (graph, estimator_factory, k, num_samples, rep_seeds[start:stop])
            for start, stop in spans
        ]
        rows = [
            row
            for chunk in instrumented_map(
                resolved, _repetition_worker, tasks, telemetry=telemetry
            )
            for row in chunk
        ]

    if tel.enabled:
        tel.incr("traversal.repetitions", len(rows))
        for _, vertices, edges, stored_vertices, stored_edges in rows:
            tel.incr("traversal.vertices", vertices)
            tel.incr("traversal.edges", edges)
            tel.incr("sample.vertices", stored_vertices)
            tel.incr("sample.edges", stored_edges)
    approach = rows[-1][0] if rows else "unknown"
    vertex_costs = [row[1] for row in rows]
    edge_costs = [row[2] for row in rows]
    sample_vertices = [row[3] for row in rows]
    sample_edges = [row[4] for row in rows]
    return TraversalCostRow(
        graph_name=graph.name,
        approach=approach,
        vertex_cost=float(np.mean(vertex_costs)),
        edge_cost=float(np.mean(edge_costs)),
        sample_vertices=float(np.mean(sample_vertices)),
        sample_edges=float(np.mean(sample_edges)),
        num_repetitions=num_repetitions,
    )


def traversal_cost_table(
    graph: InfluenceGraph,
    factories: Mapping[str, EstimatorFactory],
    *,
    k: int = 1,
    num_samples: int = 1,
    num_repetitions: int = 3,
    experiment_seed: int | None = None,
    model: "str | DiffusionModel | None" = None,
    jobs: int | None = None,
    executor: "Executor | None" = None,
    context: RunContext | None = None,
    telemetry=None,
) -> list[TraversalCostRow]:
    """Table 8 rows for one instance across several approaches.

    ``context`` supplies any of ``experiment_seed``/``jobs``/``executor``/
    ``model``/``telemetry`` left at ``None`` (explicit kwargs win).
    """
    from ..runtime.engine import executor_scope

    experiment_seed, jobs, executor, model, telemetry, _ = resolve_context(
        context,
        seed=experiment_seed,
        jobs=jobs,
        executor=executor,
        model=model,
        telemetry=telemetry,
    )
    if model is not None:
        resolve_model(model).validate(graph)
    rows = []
    with executor_scope(jobs, executor) as resolved:
        for label, factory in factories.items():
            # repro-lint: allow[CTX001] context was flattened by resolve_context
            # above; jobs became the scoped executor and model was validated
            # once for the whole table.
            row = per_sample_traversal_cost(
                graph,
                factory,
                k=k,
                num_samples=num_samples,
                num_repetitions=num_repetitions,
                experiment_seed=experiment_seed,
                executor=resolved,
                telemetry=telemetry,
            )
            # Trust the estimator's own approach label but fall back to the key.
            if row.approach == "unknown":
                row = TraversalCostRow(
                    graph_name=row.graph_name,
                    approach=label,
                    vertex_cost=row.vertex_cost,
                    edge_cost=row.edge_cost,
                    sample_vertices=row.sample_vertices,
                    sample_edges=row.sample_edges,
                    num_repetitions=row.num_repetitions,
                )
            rows.append(row)
    return rows


def empirical_cost_ratios(rows: list[TraversalCostRow]) -> dict[str, float]:
    """Normalise Table 8 rows to Oneshot = 1 (Section 5.3's 1 : m~/m : 1/n check).

    Returns per-approach vertex and edge ratios keyed
    ``"<approach>_vertex"`` / ``"<approach>_edge"``.  Raises if no Oneshot row
    is present (the two largest paper networks omit Oneshot; use Snapshot as
    the base there by normalising manually).
    """
    base = next((row for row in rows if row.approach == "oneshot"), None)
    if base is None:
        raise ExperimentConfigurationError("empirical_cost_ratios requires a oneshot row")
    ratios: dict[str, float] = {}
    for row in rows:
        ratios[f"{row.approach}_vertex"] = (
            row.vertex_cost / base.vertex_cost if base.vertex_cost else float("nan")
        )
        ratios[f"{row.approach}_edge"] = (
            row.edge_cost / base.edge_cost if base.edge_cost else float("nan")
        )
    return ratios


@dataclass(frozen=True)
class EqualAccuracyCostRow:
    """Table 9 row: cost per unit gamma when conditioned to identical accuracy."""

    graph_name: str
    approach: str
    comparable_ratio: float
    cost_per_gamma: float

    def as_row(self) -> dict[str, object]:
        """Flatten for table rendering."""
        return {
            "network": self.graph_name,
            "algorithm": self.approach,
            "comparable_ratio": round(self.comparable_ratio, 4),
            "cost_per_gamma": round(self.cost_per_gamma, 1),
        }


def equal_accuracy_costs(
    per_sample_rows: list[TraversalCostRow],
    comparable_ratios: Mapping[str, float],
) -> list[EqualAccuracyCostRow]:
    """Combine Table 8 per-sample costs with comparable ratios into Table 9.

    ``comparable_ratios`` maps approach name to its comparable number ratio
    relative to Snapshot (so ``{"snapshot": 1.0}`` implicitly, ``"oneshot"``
    maps to ``cr1`` and ``"ris"`` to ``cr2``).  The equal-accuracy cost per
    unit gamma is ``ratio * (vertex_cost + edge_cost)``.
    """
    rows: list[EqualAccuracyCostRow] = []
    for row in per_sample_rows:
        ratio = comparable_ratios.get(row.approach, 1.0)
        if ratio <= 0:
            raise ExperimentConfigurationError(
                f"comparable ratio for {row.approach} must be positive, got {ratio}"
            )
        rows.append(
            EqualAccuracyCostRow(
                graph_name=row.graph_name,
                approach=row.approach,
                comparable_ratio=float(ratio),
                cost_per_gamma=float(ratio) * row.total_cost,
            )
        )
    return rows
