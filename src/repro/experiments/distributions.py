"""Influence-distribution summaries (Section 5.2, Figures 4-6).

The paper visualises influence distributions as notched box plots annotated
with the mean, the 1st/25th/75th/99th percentiles, and the notch (a 95%
confidence interval for the median).  :class:`InfluenceDistribution` computes
all of those numbers from the raw per-trial influence values, and
:func:`mean_versus_statistics` produces the (mean, SD) and
(mean, 1st percentile) series of Figure 6, which underpin the paper's claim
that the mean alone is a sufficient quality statistic for comparing the three
approaches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ExperimentConfigurationError


@dataclass(frozen=True)
class InfluenceDistribution:
    """Summary statistics of one empirical influence distribution."""

    num_trials: int
    mean: float
    std: float
    minimum: float
    percentile_1: float
    percentile_25: float
    median: float
    percentile_75: float
    percentile_99: float
    maximum: float
    notch_low: float
    notch_high: float

    # ------------------------------------------------------------------ #
    @staticmethod
    def from_values(values: Sequence[float] | np.ndarray) -> "InfluenceDistribution":
        """Compute the box-plot statistics from raw influence values."""
        array = np.asarray(values, dtype=np.float64)
        if array.size == 0:
            raise ExperimentConfigurationError(
                "cannot summarise an empty influence distribution"
            )
        q1, q25, q50, q75, q99 = np.percentile(array, [1, 25, 50, 75, 99])
        iqr = q75 - q25
        # Standard notch formula: median +- 1.57 * IQR / sqrt(n).
        notch_radius = 1.57 * iqr / math.sqrt(array.size)
        # np.mean's pairwise summation can drift one ULP outside [min, max]
        # for near-constant samples; clamp so min <= mean <= max always holds.
        mean = float(min(max(array.mean(), array.min()), array.max()))
        return InfluenceDistribution(
            num_trials=int(array.size),
            mean=mean,
            std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
            minimum=float(array.min()),
            percentile_1=float(q1),
            percentile_25=float(q25),
            median=float(q50),
            percentile_75=float(q75),
            percentile_99=float(q99),
            maximum=float(array.max()),
            notch_low=float(q50 - notch_radius),
            notch_high=float(q50 + notch_radius),
        )

    # ------------------------------------------------------------------ #
    @property
    def interquartile_range(self) -> float:
        """75th minus 25th percentile."""
        return self.percentile_75 - self.percentile_25

    def as_row(self) -> dict[str, float]:
        """Flatten to a dictionary for table rendering."""
        return {
            "num_trials": self.num_trials,
            "mean": round(self.mean, 4),
            "std": round(self.std, 4),
            "min": round(self.minimum, 4),
            "p1": round(self.percentile_1, 4),
            "p25": round(self.percentile_25, 4),
            "median": round(self.median, 4),
            "p75": round(self.percentile_75, 4),
            "p99": round(self.percentile_99, 4),
            "max": round(self.maximum, 4),
        }

    def is_better_than(self, other: "InfluenceDistribution") -> bool:
        """The paper's ordering of influence distributions: compare means.

        Section 5.2.3 argues that for a fixed instance the mean is a dominant
        factor (SD and the 1st percentile track it regardless of approach), so
        distribution ``I1`` is declared better than ``I2`` iff its mean is
        larger.
        """
        return self.mean > other.mean


def near_optimal_probability(
    values: Sequence[float] | np.ndarray,
    reference: float,
    *,
    quality: float = 0.95,
) -> float:
    """Fraction of trials reaching at least ``quality`` times the reference spread.

    This is the success criterion behind Table 5: an instance/sample-number
    pair is deemed sufficient once this probability reaches 99%.
    """
    if reference <= 0:
        raise ExperimentConfigurationError(
            f"reference spread must be positive, got {reference}"
        )
    if not 0.0 < quality <= 1.0:
        raise ExperimentConfigurationError(
            f"quality must lie in (0, 1], got {quality}"
        )
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        return 0.0
    return float(np.mean(array >= quality * reference))


def mean_versus_statistics(
    distributions: Sequence[InfluenceDistribution],
) -> dict[str, list[float]]:
    """Figure 6 series: mean value vs. standard deviation and 1st percentile.

    Returns three aligned lists keyed ``"mean"``, ``"std"``, ``"p1"``, ordered
    by increasing mean, one point per input distribution (one per sample
    number in the paper's usage).
    """
    ordered = sorted(distributions, key=lambda dist: dist.mean)
    return {
        "mean": [dist.mean for dist in ordered],
        "std": [dist.std for dist in ordered],
        "p1": [dist.percentile_1 for dist in ordered],
    }
