"""Comparable number and size ratios between approaches (Section 5.2.3).

The paper compares two approaches by asking: *for each sample number of
approach 1, what is the least sample number of approach 2 whose influence
distribution is at least as good (has at least the same mean)?*  That least
value defines the *comparable number ratio* ``s2 / s1``; weighting by the
per-sample storage gives the *comparable size ratio*.  Figures 7-8 plot the
ratios against approach 1's sample number (or sample size) and Tables 6-7
report their medians.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median
from typing import Sequence

from ..exceptions import ExperimentConfigurationError
from .sweeps import SweepResult


@dataclass(frozen=True)
class ComparablePoint:
    """One point of a comparable-ratio curve."""

    reference_samples: int
    reference_mean: float
    comparable_samples: int | None
    number_ratio: float | None
    reference_size: float
    comparable_size: float | None
    size_ratio: float | None


@dataclass(frozen=True)
class ComparableRatioCurve:
    """Comparable number/size ratios of ``target`` relative to ``reference``."""

    reference_approach: str
    target_approach: str
    points: tuple[ComparablePoint, ...]

    def defined_points(self) -> tuple[ComparablePoint, ...]:
        """Points where a comparable sample number exists within the sweep."""
        return tuple(p for p in self.points if p.comparable_samples is not None)

    def median_number_ratio(self) -> float | None:
        """Median of the defined comparable number ratios (Tables 6-7)."""
        ratios = [p.number_ratio for p in self.defined_points() if p.number_ratio]
        if not ratios:
            return None
        return float(median(ratios))

    def median_size_ratio(self) -> float | None:
        """Median of the defined comparable size ratios (Table 7)."""
        ratios = [p.size_ratio for p in self.defined_points() if p.size_ratio is not None]
        if not ratios:
            return None
        return float(median(ratios))

    def as_rows(self) -> list[dict[str, object]]:
        """Per-point rows for reporting (Figure 7/8 series)."""
        rows = []
        for point in self.points:
            rows.append(
                {
                    "reference_samples": point.reference_samples,
                    "reference_mean": round(point.reference_mean, 4),
                    "comparable_samples": point.comparable_samples,
                    "number_ratio": point.number_ratio,
                    "size_ratio": point.size_ratio,
                }
            )
        return rows


def comparable_ratio_curve(
    reference: SweepResult,
    target: SweepResult,
    *,
    reference_sample_numbers: Sequence[int] | None = None,
) -> ComparableRatioCurve:
    """Compute comparable number/size ratios of ``target`` against ``reference``.

    For every reference sample number ``s1``, the comparable target sample
    number ``s2`` is the least swept value whose mean influence is at least
    the reference mean at ``s1``.  Points where no swept ``s2`` qualifies are
    kept with ``None`` entries so callers can see where the target sweep was
    too short.
    """
    if reference.graph_name != target.graph_name or reference.k != target.k:
        raise ExperimentConfigurationError(
            "comparable ratios require sweeps on the same graph and seed size"
        )
    target_means = target.mean_influences()
    target_sizes = target.mean_sample_sizes()
    reference_means = reference.mean_influences()
    reference_sizes = reference.mean_sample_sizes()

    selected = (
        tuple(sorted(reference_sample_numbers))
        if reference_sample_numbers is not None
        else reference.sample_numbers
    )
    points: list[ComparablePoint] = []
    for s1 in selected:
        if s1 not in reference_means:
            raise ExperimentConfigurationError(
                f"reference sweep does not contain sample number {s1}"
            )
        reference_mean = reference_means[s1]
        reference_size = reference_sizes[s1]
        comparable: int | None = None
        for s2 in sorted(target_means):
            if target_means[s2] >= reference_mean:
                comparable = s2
                break
        if comparable is None:
            points.append(
                ComparablePoint(
                    reference_samples=s1,
                    reference_mean=reference_mean,
                    comparable_samples=None,
                    number_ratio=None,
                    reference_size=reference_size,
                    comparable_size=None,
                    size_ratio=None,
                )
            )
            continue
        comparable_size = target_sizes[comparable]
        size_ratio = (
            comparable_size / reference_size if reference_size > 0 else None
        )
        points.append(
            ComparablePoint(
                reference_samples=s1,
                reference_mean=reference_mean,
                comparable_samples=comparable,
                number_ratio=comparable / s1,
                reference_size=reference_size,
                comparable_size=comparable_size,
                size_ratio=size_ratio,
            )
        )
    return ComparableRatioCurve(
        reference_approach=reference.approach,
        target_approach=target.approach,
        points=tuple(points),
    )


def median_comparable_number_ratio(
    reference: SweepResult, target: SweepResult
) -> float | None:
    """Shortcut for the Table 6/7 "median comparable number ratio" cell."""
    return comparable_ratio_curve(reference, target).median_number_ratio()


def median_comparable_size_ratio(
    reference: SweepResult, target: SweepResult
) -> float | None:
    """Shortcut for the Table 7 "median comparable size ratio" cell."""
    return comparable_ratio_curve(reference, target).median_size_ratio()
