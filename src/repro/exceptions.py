"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can distinguish library failures from
programming errors with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphConstructionError(ReproError):
    """Raised when an influence graph cannot be constructed from its inputs."""


class InvalidProbabilityError(GraphConstructionError):
    """Raised when an edge probability lies outside the half-open interval (0, 1]."""


class UnknownDatasetError(ReproError, KeyError):
    """Raised when a dataset name is not present in the dataset registry."""


class UnknownProbabilityModelError(ReproError, KeyError):
    """Raised when an edge-probability model name is not recognised."""


class InvalidSeedSetError(ReproError, ValueError):
    """Raised when a seed set contains out-of-range or duplicate vertices."""


class InvalidParameterError(ReproError, ValueError):
    """Raised when an algorithm or experiment parameter is out of range."""


class EstimatorStateError(ReproError, RuntimeError):
    """Raised when an estimator is used before :meth:`build` or after exhaustion."""


class ExperimentConfigurationError(ReproError, ValueError):
    """Raised when an experiment specification is inconsistent."""


class SpecValidationError(ExperimentConfigurationError):
    """Raised when a declarative experiment spec is malformed.

    Covers unknown keys in ``from_dict`` payloads (the offending key is named
    in the message), mutually exclusive fields set together, and field values
    that fail eager validation (unknown approach/dataset/model names, bad
    sample numbers, ...).
    """
